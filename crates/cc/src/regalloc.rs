//! Liveness analysis and linear-scan register allocation.
//!
//! Temps whose live interval crosses a call are placed in callee-saved
//! `$s` registers (saved in the prologue); the rest compete for
//! caller-saved `$t` registers. When both pools run dry the interval with
//! the furthest end is spilled to a stack slot. `$t8`/`$t9` are reserved as
//! spill scratch, `$at` for assembler pseudo-expansions.

use crate::cfg::Cfg;
use crate::ir::{FuncIr, Inst, Temp};
use emask_isa::Reg;
use std::collections::{HashMap, HashSet};

/// Where a temp lives at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register.
    Reg(Reg),
    /// A stack slot (index, word-sized) in the frame's spill area.
    Slot(u32),
}

/// The allocation result for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Temp → location.
    pub assign: HashMap<Temp, Loc>,
    /// Callee-saved registers used (must be saved/restored).
    pub used_callee_saved: Vec<Reg>,
    /// Number of spill slots.
    pub spill_slots: u32,
}

impl Allocation {
    /// The location of `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` was never seen by the allocator — a compiler bug.
    pub fn loc(&self, t: Temp) -> Loc {
        *self.assign.get(&t).expect("temp escaped allocation")
    }
}

const CALLER_SAVED: [Reg; 8] =
    [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7];
const CALLEE_SAVED: [Reg; 8] =
    [Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5, Reg::S6, Reg::S7];

/// A live interval over linear instruction indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    temp: Temp,
    start: usize,
    end: usize,
    crosses_call: bool,
}

/// Computes per-instruction liveness (the set live *before* each
/// instruction) via standard backward dataflow over the CFG.
pub fn liveness(f: &FuncIr, cfg: &Cfg) -> Vec<HashSet<Temp>> {
    let n = f.body.len();
    let nb = cfg.blocks.len();
    // Block-level use/def.
    let mut use_b = vec![HashSet::new(); nb];
    let mut def_b = vec![HashSet::new(); nb];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        for i in b.start..b.end {
            for u in f.body[i].uses() {
                if !def_b[bi].contains(&u) {
                    use_b[bi].insert(u);
                }
            }
            if let Some(d) = f.body[i].def() {
                def_b[bi].insert(d);
            }
        }
    }
    let mut live_in: Vec<HashSet<Temp>> = vec![HashSet::new(); nb];
    let mut live_out: Vec<HashSet<Temp>> = vec![HashSet::new(); nb];
    loop {
        let mut changed = false;
        for bi in (0..nb).rev() {
            let mut out = HashSet::new();
            for &s in &cfg.blocks[bi].succs {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<Temp> = use_b[bi].clone();
            inn.extend(out.difference(&def_b[bi]).copied());
            if inn != live_in[bi] || out != live_out[bi] {
                changed = true;
                live_in[bi] = inn;
                live_out[bi] = out;
            }
        }
        if !changed {
            break;
        }
    }
    // Per-instruction live-before sets.
    let mut before = vec![HashSet::new(); n];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        let mut live = live_out[bi].clone();
        for i in (b.start..b.end).rev() {
            if let Some(d) = f.body[i].def() {
                live.remove(&d);
            }
            live.extend(f.body[i].uses());
            before[i] = live.clone();
        }
    }
    before
}

fn intervals(f: &FuncIr, before: &[HashSet<Temp>]) -> Vec<Interval> {
    let n = f.body.len();
    let mut range: HashMap<Temp, (usize, usize)> = HashMap::new();
    let mut touch = |t: Temp, i: usize| {
        let e = range.entry(t).or_insert((i, i));
        e.0 = e.0.min(i);
        e.1 = e.1.max(i);
    };
    // Params are live from function entry.
    for &p in &f.params {
        touch(p, 0);
    }
    for (i, live) in before.iter().enumerate().take(n) {
        for &t in live {
            touch(t, i);
        }
        if let Some(d) = f.body[i].def() {
            touch(d, i);
            // Value exists until at least the next point.
            touch(d, (i + 1).min(n.saturating_sub(1)));
        }
        for t in f.body[i].uses() {
            touch(t, i);
        }
    }
    let call_sites: Vec<usize> = f
        .body
        .iter()
        .enumerate()
        .filter(|(_, inst)| matches!(inst, Inst::Call { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut out: Vec<Interval> = range
        .into_iter()
        .map(|(temp, (start, end))| Interval {
            temp,
            start,
            end,
            crosses_call: call_sites.iter().any(|&c| start < c && c < end),
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.temp));
    out
}

/// Allocates registers for `f`.
pub fn allocate(f: &FuncIr, cfg: &Cfg) -> Allocation {
    let before = liveness(f, cfg);
    let ivs = intervals(f, &before);
    let mut free_t: Vec<Reg> = CALLER_SAVED.to_vec();
    let mut free_s: Vec<Reg> = CALLEE_SAVED.to_vec();
    let mut active: Vec<(Interval, Loc)> = Vec::new();
    let mut assign: HashMap<Temp, Loc> = HashMap::new();
    let mut used_callee: HashSet<Reg> = HashSet::new();
    let mut spill_slots = 0u32;

    for iv in ivs {
        // Expire old intervals.
        active.retain(|(a, loc)| {
            if a.end < iv.start {
                if let Loc::Reg(r) = loc {
                    if CALLER_SAVED.contains(r) {
                        free_t.push(*r);
                    } else {
                        free_s.push(*r);
                    }
                }
                false
            } else {
                true
            }
        });
        // Pick a register from the preferred pool, falling back to the
        // other pool (an $s reg is always safe; a $t reg is safe only for
        // intervals that do not cross calls).
        let reg =
            if iv.crosses_call { free_s.pop() } else { free_t.pop().or_else(|| free_s.pop()) };
        let loc = match reg {
            Some(r) => {
                if CALLEE_SAVED.contains(&r) {
                    used_callee.insert(r);
                }
                Loc::Reg(r)
            }
            None => {
                // Spill the interval that ends furthest (this one or an
                // active one with a compatible register class).
                let victim = active
                    .iter()
                    .enumerate()
                    .filter(|(_, (a, loc))| {
                        matches!(loc, Loc::Reg(r)
                            if !iv.crosses_call || CALLEE_SAVED.contains(r))
                            && a.end > iv.end
                    })
                    .max_by_key(|(_, (a, _))| a.end)
                    .map(|(i, _)| i);
                match victim {
                    Some(vi) => {
                        let (vict, vloc) = active.remove(vi);
                        let slot = Loc::Slot(spill_slots);
                        spill_slots += 1;
                        assign.insert(vict.temp, slot);
                        active.push((iv, vloc));
                        assign.insert(iv.temp, vloc);
                        continue;
                    }
                    None => {
                        let slot = Loc::Slot(spill_slots);
                        spill_slots += 1;
                        slot
                    }
                }
            }
        };
        assign.insert(iv.temp, loc);
        active.push((iv, loc));
    }

    let mut used_callee_saved: Vec<Reg> = used_callee.into_iter().collect();
    used_callee_saved.sort_by_key(|r| r.number());
    Allocation { assign, used_callee_saved, spill_slots }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::lower::lower_unit;
    use crate::opt::optimize;
    use crate::parser::parse;
    use crate::sema::check;

    fn alloc_src(src: &str, which: &str) -> (FuncIr, Allocation) {
        let unit = parse(src).unwrap();
        let info = check(&unit).unwrap();
        let mut funcs = lower_unit(&unit, &info);
        for f in &mut funcs {
            optimize(f);
        }
        let f = funcs.into_iter().find(|f| f.name == which).unwrap();
        let cfg = Cfg::build(&f);
        let a = allocate(&f, &cfg);
        (f, a)
    }

    /// No two temps with overlapping live intervals may share a register.
    fn assert_no_conflicts(f: &FuncIr, a: &Allocation) {
        let cfg = Cfg::build(f);
        let before = liveness(f, &cfg);
        for (i, live) in before.iter().enumerate() {
            let mut seen: HashMap<Reg, Temp> = HashMap::new();
            let mut check = |t: Temp| {
                if let Loc::Reg(r) = a.loc(t) {
                    if let Some(prev) = seen.insert(r, t) {
                        panic!("temps {prev} and {t} share {r} at inst {i}");
                    }
                }
            };
            for &t in live {
                check(t);
            }
        }
    }

    #[test]
    fn small_function_all_in_registers() {
        let (f, a) = alloc_src("int main() { int x = 1; int y = 2; return x + y; }", "main");
        assert_eq!(a.spill_slots, 0);
        assert_no_conflicts(&f, &a);
    }

    #[test]
    fn loop_variable_gets_stable_register() {
        let (f, a) = alloc_src(
            "int g; int main() { int i; int s = 0; for (i = 0; i < 9; i = i + 1) { s = s + i; } g = s; return s; }",
            "main",
        );
        assert_no_conflicts(&f, &a);
        // i and s are live simultaneously: different registers.
        let regs: HashSet<_> = a
            .assign
            .values()
            .filter_map(|l| match l {
                Loc::Reg(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert!(regs.len() >= 2);
    }

    #[test]
    fn values_across_calls_use_callee_saved() {
        let (f, a) = alloc_src(
            "int g = 7; int id(int x) { return x; } int main() { int k = g; int r = id(3); return k + r; }",
            "main",
        );
        assert_no_conflicts(&f, &a);
        // k is live across the call → must be in an $s register or spilled.
        assert!(!a.used_callee_saved.is_empty() || a.spill_slots > 0);
        for (t, loc) in &a.assign {
            if let Loc::Reg(r) = loc {
                // No temp may sit in a reserved register.
                assert!(
                    !matches!(r, Reg::T8 | Reg::T9 | Reg::At | Reg::V0 | Reg::A0),
                    "temp {t} in reserved {r}"
                );
            }
        }
    }

    #[test]
    fn high_pressure_spills_not_crashes() {
        // 20 simultaneously-live values exceed the 16-register pool.
        let mut src = String::from("int g; int main() {");
        for i in 0..20 {
            src.push_str(&format!("int v{i} = g + {i};"));
        }
        src.push_str("g = ");
        let sum = (0..20).map(|i| format!("v{i}")).collect::<Vec<_>>().join(" + ");
        src.push_str(&sum);
        src.push_str("; return 0; }");
        let (f, a) = alloc_src(&src, "main");
        assert!(a.spill_slots > 0, "pressure of 20 must spill");
        assert_no_conflicts(&f, &a);
    }

    #[test]
    fn liveness_detects_loop_carried_values() {
        let (f, _) = alloc_src(
            "int g; int main() { int s = 0; int i = 0; while (i < 3) { s = s + 1; i = i + 1; } g = s; return 0; }",
            "main",
        );
        let cfg = Cfg::build(&f);
        let before = liveness(&f, &cfg);
        // s must be live at the loop's backward edge (i.e. live somewhere
        // inside the loop body even before its redefinition).
        let live_points = before.iter().filter(|s| !s.is_empty()).count();
        assert!(live_points > 3);
    }

    #[test]
    fn params_allocated_from_entry() {
        let (f, a) =
            alloc_src("int f(int a, int b) { return a + b; } int main() { return f(1, 2); }", "f");
        for p in &f.params {
            let _ = a.loc(*p); // must be assigned
        }
        assert_no_conflicts(&f, &a);
    }
}
