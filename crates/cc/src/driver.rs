//! The compiler driver: source → assembled [`Program`].

use crate::codegen::emit_unit;
use crate::ir::FuncIr;
use crate::lexer::LexError;
use crate::lower::lower_unit;
use crate::opt;
use crate::parser::{parse, ParseError};
use crate::profile::{CompileProfile, PassTiming};
use crate::sema::{check, SemaError};
use crate::slice::{slice_unit, SliceReport};
use emask_isa::{assemble, AssembleError, Program};
use std::fmt;
use std::time::Instant;

/// Which instructions receive the secure bit — the paper's four comparison
/// points (§4.3): 46.4 µJ / 52.6 µJ / 63.6 µJ / 83.5 µJ in the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaskPolicy {
    /// No masking: the unprotected baseline.
    None,
    /// The paper's contribution: only instructions reached by the forward
    /// slice from `secure` seeds.
    #[default]
    Selective,
    /// The naive software approach: every load and store is secure,
    /// without any compiler analysis.
    AllLoadsStores,
    /// The existing dual-rail-hardware approach: every instruction secure.
    AllInstructions,
}

impl fmt::Display for MaskPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MaskPolicy::None => "none",
            MaskPolicy::Selective => "selective",
            MaskPolicy::AllLoadsStores => "all-loads-stores",
            MaskPolicy::AllInstructions => "all-instructions",
        };
        f.write_str(s)
    }
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// The masking policy.
    pub policy: MaskPolicy,
    /// Disable the optimization passes (for debugging / ablation).
    pub no_optimize: bool,
    /// Keep named locals in memory instead of registers, reproducing the
    /// codegen of the paper's compiler (its Figure 4 loads the loop
    /// counter from memory). This is what gives the naive
    /// all-loads/stores policy its large overhead over selective masking.
    /// Recursion is unsupported in this mode.
    pub locals_in_memory: bool,
}

impl CompileOptions {
    /// Options with the given policy and optimizations on.
    pub fn with_policy(policy: MaskPolicy) -> Self {
        Self { policy, ..Self::default() }
    }

    /// Paper-faithful codegen: the given policy plus memory-resident
    /// locals.
    pub fn paper_style(policy: MaskPolicy) -> Self {
        Self { policy, no_optimize: false, locals_in_memory: true }
    }
}

/// Any front-to-back compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Sema(SemaError),
    /// The generated assembly failed to assemble — a compiler bug surfaced
    /// with full context.
    Assemble(AssembleError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "semantic error: {e}"),
            CompileError::Assemble(e) => write!(f, "internal assembly error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<SemaError> for CompileError {
    fn from(e: SemaError) -> Self {
        CompileError::Sema(e)
    }
}

impl From<AssembleError> for CompileError {
    fn from(e: AssembleError) -> Self {
        CompileError::Assemble(e)
    }
}

/// The result of a successful compilation.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The generated assembly text.
    pub asm: String,
    /// The assembled, runnable program.
    pub program: Program,
    /// The forward-slice report (what was deemed critical and why).
    pub report: SliceReport,
    /// The optimized IR, for inspection.
    pub ir: Vec<FuncIr>,
}

/// Compiles Tiny-C source to a runnable program.
///
/// # Errors
///
/// Returns [`CompileError`] for any front-end failure; internal assembly
/// failures indicate a code-generation bug and are surfaced rather than
/// panicking.
///
/// # Examples
///
/// ```
/// use emask_cc::{compile, CompileOptions, MaskPolicy};
/// let out = compile(
///     "int main() { return 6 * 7; }",
///     CompileOptions::with_policy(MaskPolicy::None),
/// )?;
/// assert!(out.program.text.len() > 3);
/// # Ok::<(), emask_cc::CompileError>(())
/// ```
pub fn compile(source: &str, options: CompileOptions) -> Result<CompileOutput, CompileError> {
    compile_profiled(source, options).map(|(out, _)| out)
}

/// [`compile`], additionally returning a [`CompileProfile`] with per-pass
/// wall times, IR size deltas, and the slice report's headline numbers.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_profiled(
    source: &str,
    options: CompileOptions,
) -> Result<(CompileOutput, CompileProfile), CompileError> {
    let mut profile = CompileProfile { source_bytes: source.len(), ..Default::default() };
    fn timed<T>(
        name: &'static str,
        profile: &mut CompileProfile,
        f: impl FnOnce() -> Result<T, CompileError>,
    ) -> Result<T, CompileError> {
        let start = Instant::now();
        let r = f();
        profile.passes.push(PassTiming {
            name,
            wall: start.elapsed(),
            ir_before: None,
            ir_after: None,
        });
        r
    }

    let mut unit = timed("parse", &mut profile, || Ok(parse(source)?))?;
    timed("check", &mut profile, || Ok(check(&unit).map(|_| ())?))?;
    if options.locals_in_memory {
        unit = timed("hoist", &mut profile, || Ok(crate::hoist::hoist_locals(&unit)?))?;
    }
    let info = timed("recheck", &mut profile, || Ok(check(&unit)?))?;

    let ir_size = |funcs: &[FuncIr]| funcs.iter().map(|f| f.body.len()).sum::<usize>();
    let start = Instant::now();
    let mut funcs = lower_unit(&unit, &info);
    profile.passes.push(PassTiming {
        name: "lower",
        wall: start.elapsed(),
        ir_before: Some(0),
        ir_after: Some(ir_size(&funcs)),
    });
    if !options.no_optimize {
        let before = ir_size(&funcs);
        let start = Instant::now();
        for f in &mut funcs {
            opt::fold_const_globals(f, &unit);
            opt::optimize(f);
        }
        profile.passes.push(PassTiming {
            name: "optimize",
            wall: start.elapsed(),
            ir_before: Some(before),
            ir_after: Some(ir_size(&funcs)),
        });
    }

    let start = Instant::now();
    let report = slice_unit(&funcs, &info);
    profile.passes.push(PassTiming {
        name: "slice",
        wall: start.elapsed(),
        ir_before: None,
        ir_after: None,
    });
    let start = Instant::now();
    let asm = emit_unit(&unit, &funcs, &report, options.policy);
    profile.passes.push(PassTiming {
        name: "emit",
        wall: start.elapsed(),
        ir_before: None,
        ir_after: None,
    });
    let start = Instant::now();
    let program = assemble(&asm)?;
    profile.passes.push(PassTiming {
        name: "assemble",
        wall: start.elapsed(),
        ir_before: None,
        ir_after: None,
    });

    profile.text_instructions = program.text.len();
    profile.secure_instructions = program.secure_instruction_count();
    profile.critical_ir_instructions = report.critical.values().map(|s| s.len()).sum();
    profile.tainted_globals = report.tainted_globals.len();
    profile.tainted_branches = report.tainted_branches.len();
    Ok((CompileOutput { asm, program, report, ir: funcs }, profile))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use emask_cpu::Cpu;
    use emask_isa::Reg;

    fn run_main(src: &str, policy: MaskPolicy) -> (u32, emask_cpu::RunResult) {
        let out = compile(src, CompileOptions::with_policy(policy))
            .unwrap_or_else(|e| panic!("compile failed: {e}\n"));
        let mut cpu = Cpu::new(&out.program);
        let r = cpu.run(5_000_000).unwrap_or_else(|e| panic!("run failed: {e}\nasm:\n{}", out.asm));
        (cpu.reg(Reg::V0), r)
    }

    fn ret(src: &str) -> u32 {
        run_main(src, MaskPolicy::None).0
    }

    #[test]
    fn returns_constant() {
        assert_eq!(ret("int main() { return 42; }"), 42);
    }

    #[test]
    fn arithmetic_works() {
        assert_eq!(ret("int main() { return (2 + 3) * 4 - 6 / 2; }"), 17);
        assert_eq!(ret("int main() { return 17 % 5; }"), 2);
        assert_eq!(ret("int main() { int x = -8; return x >> 1; }") as i32, -4);
        assert_eq!(ret("int main() { return 1 << 10; }"), 1024);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(ret("int main() { return (0xF0 & 0x3C) | (1 ^ 3); }"), 0x32);
        assert_eq!(ret("int main() { return ~0; }"), u32::MAX);
    }

    #[test]
    fn comparisons_produce_01() {
        assert_eq!(ret("int main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5) + (5 == 5) + (6 != 6); }"), 3);
    }

    #[test]
    fn locals_and_assignment() {
        assert_eq!(ret("int main() { int x = 3; int y; y = x * x; x = y - x; return x; }"), 6);
    }

    #[test]
    fn globals_persist() {
        assert_eq!(ret("int g = 10; int main() { g = g + 5; return g; }"), 15);
    }

    #[test]
    fn arrays_read_write() {
        assert_eq!(
            ret("int a[4] = {10, 20, 30, 40}; int main() { a[1] = a[0] + a[3]; return a[1]; }"),
            50
        );
    }

    #[test]
    fn loops_compute() {
        assert_eq!(
            ret("int main() { int s = 0; int i; for (i = 1; i <= 10; i = i + 1) { s = s + i; } return s; }"),
            55
        );
        assert_eq!(
            ret("int main() { int n = 10; int f0 = 0; int f1 = 1; while (n > 0) { int t = f0 + f1; f0 = f1; f1 = t; n = n - 1; } return f0; }"),
            55
        );
    }

    #[test]
    fn if_else_branches() {
        assert_eq!(ret("int main() { int x = 5; if (x > 3) { return 1; } else { return 2; } }"), 1);
        assert_eq!(ret("int main() { int x = 2; if (x > 3) { return 1; } else { return 2; } }"), 2);
    }

    #[test]
    fn short_circuit_semantics() {
        // Division by zero on the unevaluated side must not trap.
        assert_eq!(
            ret("int main() { int x = 0; if (x != 0 && 10 / x > 1) { return 1; } return 2; }"),
            2
        );
        assert_eq!(
            ret("int main() { int x = 1; if (x == 1 || 10 / 0 > 1) { return 3; } return 4; }"),
            3
        );
    }

    #[test]
    fn function_calls() {
        assert_eq!(ret("int sq(int x) { return x * x; } int main() { return sq(3) + sq(4); }"), 25);
    }

    #[test]
    fn recursion_works() {
        assert_eq!(
            ret("int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main() { return fact(6); }"),
            720
        );
    }

    #[test]
    fn four_argument_calls() {
        assert_eq!(
            ret("int f(int a, int b, int c, int d) { return a + 2*b + 3*c + 4*d; } int main() { return f(1, 2, 3, 4); }"),
            30
        );
    }

    #[test]
    fn nested_calls_preserve_live_values() {
        assert_eq!(
            ret("int id(int x) { return x; } int main() { int k = 100; int a = id(1); int b = id(2); return k + a + b; }"),
            103
        );
    }

    #[test]
    fn high_register_pressure_program_runs() {
        let mut src = String::from("int g = 1; int main() {");
        for i in 0..20 {
            src.push_str(&format!("int v{i} = g + {i};"));
        }
        src.push_str("return ");
        let sum = (0..20).map(|i| format!("v{i}")).collect::<Vec<_>>().join(" + ");
        src.push_str(&sum);
        src.push_str("; }");
        // Σ (1 + i) for i in 0..20 = 20 + 190.
        assert_eq!(ret(&src), 210);
    }

    #[test]
    fn policies_preserve_semantics() {
        let src = "secure int key[4] = {1, 0, 1, 1}; int out[4];\
                   int main() { int i; int acc = 0;\
                     for (i = 0; i < 4; i = i + 1) { out[i] = key[i] ^ 1; }\
                     for (i = 0; i < 4; i = i + 1) { acc = acc * 2 + out[i]; }\
                     return acc; }";
        let expect = 0b0100;
        for policy in [
            MaskPolicy::None,
            MaskPolicy::Selective,
            MaskPolicy::AllLoadsStores,
            MaskPolicy::AllInstructions,
        ] {
            let (v, _) = run_main(src, policy);
            assert_eq!(v, expect, "policy {policy} changed semantics");
        }
    }

    #[test]
    fn policy_secure_counts_are_ordered() {
        let src = "secure int key[4] = {1, 0, 1, 1}; int out[4]; int pubwork;\
                   int main() { int i;\
                     pubwork = 12345;\
                     for (i = 0; i < 4; i = i + 1) { out[i] = key[i] ^ 1; }\
                     return out[0]; }";
        let count = |policy| {
            compile(src, CompileOptions::with_policy(policy))
                .unwrap()
                .program
                .secure_instruction_count()
        };
        let none = count(MaskPolicy::None);
        let selective = count(MaskPolicy::Selective);
        let ls = count(MaskPolicy::AllLoadsStores);
        let all = count(MaskPolicy::AllInstructions);
        assert_eq!(none, 0);
        assert!(selective > 0, "slice must secure something");
        assert!(selective < all, "selective must secure fewer than everything");
        assert!(ls < all);
    }

    #[test]
    fn selective_masks_only_sliced_loads() {
        // Exactly the paper's Figure 4 situation: of the loads in the
        // loop body, only the key-derived one becomes slw.
        let src = "secure int key[4] = {1,0,1,1}; int pubsrc[4] = {9,9,9,9};\
                   int sink1[4]; int sink2[4];\
                   int main() { int i;\
                     for (i = 0; i < 4; i = i + 1) {\
                       sink1[i] = key[i];\
                       sink2[i] = pubsrc[i];\
                     } return 0; }";
        let out = compile(src, CompileOptions::with_policy(MaskPolicy::Selective)).unwrap();
        assert!(out.report.tainted_globals.contains("sink1"));
        assert!(!out.report.tainted_globals.contains("sink2"));
        assert!(out.asm.contains("sec.lw"), "key load must be secure:\n{}", out.asm);
        // The pubsrc loop still uses plain loads.
        assert!(out.asm.contains("    lw"), "public load must stay plain");
    }

    #[test]
    fn break_exits_the_innermost_loop() {
        assert_eq!(
            ret("int main() { int i; int s = 0; for (i = 0; i < 100; i = i + 1) { if (i == 5) { break; } s = s + i; } return s * 100 + i; }"),
            10 * 100 + 5
        );
    }

    #[test]
    fn continue_skips_to_the_step() {
        // Sum of odd numbers below 10 = 25; continue must still run the
        // step expression.
        assert_eq!(
            ret("int main() { int i; int s = 0; for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s = s + i; } return s; }"),
            25
        );
    }

    #[test]
    fn break_continue_in_while_loops() {
        assert_eq!(
            ret("int main() { int n = 0; int s = 0; while (1) { n = n + 1; if (n % 3 == 0) { continue; } if (n > 10) { break; } s = s + n; } return s; }"),
            1 + 2 + 4 + 5 + 7 + 8 + 10
        );
    }

    #[test]
    fn break_targets_only_the_inner_loop() {
        assert_eq!(
            ret("int main() { int i; int j; int c = 0; for (i = 0; i < 3; i = i + 1) { for (j = 0; j < 10; j = j + 1) { if (j == 2) { break; } c = c + 1; } } return c; }"),
            6
        );
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        assert!(matches!(
            compile("int main() { break; return 0; }", CompileOptions::default()),
            Err(CompileError::Sema(_))
        ));
        assert!(matches!(
            compile("int main() { continue; return 0; }", CompileOptions::default()),
            Err(CompileError::Sema(_))
        ));
    }

    #[test]
    fn break_continue_survive_paper_style() {
        let src = "int main() { int i; int s = 0; for (i = 0; i < 10; i = i + 1) { if (i == 7) { break; } if (i % 2 == 0) { continue; } s = s + i; } return s; }";
        let a = run_main(src, MaskPolicy::None).0;
        let b = {
            let out = compile(src, CompileOptions::paper_style(MaskPolicy::None)).unwrap();
            let mut cpu = Cpu::new(&out.program);
            cpu.run(1_000_000).unwrap();
            cpu.reg(Reg::V0)
        };
        assert_eq!(a, 1 + 3 + 5);
        assert_eq!(a, b);
    }

    #[test]
    fn compile_errors_are_reported() {
        assert!(matches!(
            compile("int main() { return x; }", CompileOptions::default()),
            Err(CompileError::Sema(_))
        ));
        assert!(matches!(
            compile("int main() { return 1 +; }", CompileOptions::default()),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile("int main() { return 1 @ 2; }", CompileOptions::default()),
            Err(CompileError::Parse(_))
        ));
    }

    #[test]
    fn unoptimized_build_still_correct() {
        let src = "int main() { int x = 2 + 3 * 4; return x * 2; }";
        let out = compile(
            src,
            CompileOptions { policy: MaskPolicy::None, no_optimize: true, locals_in_memory: false },
        )
        .unwrap();
        let mut cpu = Cpu::new(&out.program);
        cpu.run(100_000).unwrap();
        assert_eq!(cpu.reg(Reg::V0), 28);
    }

    #[test]
    fn paper_style_locals_live_in_memory() {
        let src = "int g; int main() { int i; int s = 0; for (i = 0; i < 5; i = i + 1) { s = s + i; } g = s; return s; }";
        let reg = compile(src, CompileOptions::with_policy(MaskPolicy::None)).unwrap();
        let mem = compile(src, CompileOptions::paper_style(MaskPolicy::None)).unwrap();
        // Same answer either way.
        for out in [&reg, &mem] {
            let mut cpu = Cpu::new(&out.program);
            cpu.run(100_000).unwrap();
            assert_eq!(cpu.reg(Reg::V0), 10);
        }
        // Paper style must generate strictly more loads/stores (Figure 4's
        // `lw $2,i` loop-counter traffic).
        let mem_ops =
            |p: &emask_isa::Program| p.text.iter().filter(|i| i.is_load() || i.is_store()).count();
        assert!(
            mem_ops(&mem.program) > mem_ops(&reg.program),
            "paper style: {} vs optimized: {}",
            mem_ops(&mem.program),
            mem_ops(&reg.program)
        );
    }

    #[test]
    fn paper_style_rejects_recursion() {
        let src = "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); } int main() { return f(3); }";
        assert!(matches!(
            compile(src, CompileOptions::paper_style(MaskPolicy::None)),
            Err(CompileError::Sema(_))
        ));
    }

    #[test]
    fn paper_style_selective_skips_loop_counter_traffic() {
        // The Figure 4 situation: in paper style the loop counter is
        // loaded from memory but must NOT be a secure load, while the key
        // element load must be.
        let src = "secure int key[4] = {1,0,1,1}; int sink[4];                   int main() { int i; for (i = 0; i < 4; i = i + 1) { sink[i] = key[i]; } return 0; }";
        let out = compile(src, CompileOptions::paper_style(MaskPolicy::Selective)).unwrap();
        let secure_mem =
            out.program.text.iter().filter(|i| (i.is_load() || i.is_store()) && i.secure).count();
        let plain_mem =
            out.program.text.iter().filter(|i| (i.is_load() || i.is_store()) && !i.secure).count();
        assert!(secure_mem > 0, "key traffic must be secure");
        assert!(plain_mem > secure_mem, "counter traffic must dominate and stay plain");
    }

    #[test]
    fn profiled_compile_matches_plain_compile() {
        let src = "secure int key[4] = {1,0,1,1}; int sink[4];\
                   int main() { int i; for (i = 0; i < 4; i = i + 1) { sink[i] = key[i]; } return 0; }";
        let opts = CompileOptions::paper_style(MaskPolicy::Selective);
        let plain = compile(src, opts).unwrap();
        let (out, prof) = compile_profiled(src, opts).unwrap();
        assert_eq!(out.asm, plain.asm);
        // Every pipeline stage is timed, in order, including the
        // paper-style hoist pass.
        let names: Vec<&str> = prof.passes.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "parse", "check", "hoist", "recheck", "lower", "optimize", "slice", "emit",
                "assemble"
            ]
        );
        assert_eq!(prof.source_bytes, src.len());
        assert_eq!(prof.text_instructions, out.program.text.len());
        assert_eq!(prof.secure_instructions, out.program.secure_instruction_count());
        assert!(prof.critical_ir_instructions > 0);
        assert_eq!(prof.tainted_globals, out.report.tainted_globals.len());
        // Lowering creates the IR from nothing; the delta is its size.
        assert!(prof.pass("lower").unwrap().ir_delta().unwrap() > 0);
        assert!(prof.total_wall() > std::time::Duration::ZERO);
    }

    #[test]
    fn profile_skips_passes_that_do_not_run() {
        let src = "int main() { return 1; }";
        let opts =
            CompileOptions { policy: MaskPolicy::None, no_optimize: true, locals_in_memory: false };
        let (_, prof) = compile_profiled(src, opts).unwrap();
        assert!(prof.pass("hoist").is_none());
        assert!(prof.pass("optimize").is_none());
        assert!(prof.pass("assemble").is_some());
    }

    #[test]
    fn optimization_reduces_instruction_count() {
        let src = "int g; int main() { int x = 2 + 3 * 4; int dead = x * 100; g = x; return 0; }";
        let opt = compile(src, CompileOptions::default()).unwrap().program.text.len();
        let unopt = compile(
            src,
            CompileOptions {
                policy: MaskPolicy::Selective,
                no_optimize: true,
                locals_in_memory: false,
            },
        )
        .unwrap()
        .program
        .text
        .len();
        assert!(opt < unopt, "optimizer must shrink code: {opt} vs {unopt}");
    }
}
