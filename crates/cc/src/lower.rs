//! Lowering from the AST to three-address IR.

use crate::ast::{BinOp, Expr, Function, Stmt, UnOp, Unit};
use crate::ir::{BinKind, FuncIr, Inst, Label, Operand, Temp};
use crate::sema::UnitInfo;
use std::collections::HashMap;

/// Lowers every function of a checked unit.
pub fn lower_unit(unit: &Unit, info: &UnitInfo) -> Vec<FuncIr> {
    unit.functions.iter().map(|f| Lowerer::new(info).lower(f)).collect()
}

struct Lowerer<'a> {
    info: &'a UnitInfo,
    body: Vec<Inst>,
    temps: u32,
    labels: u32,
    vars: HashMap<String, Temp>,
    /// Innermost-last stack of `(continue target, break target)`.
    loops: Vec<(Label, Label)>,
}

impl<'a> Lowerer<'a> {
    fn new(info: &'a UnitInfo) -> Self {
        Self {
            info,
            body: Vec::new(),
            temps: 0,
            labels: 0,
            vars: HashMap::new(),
            loops: Vec::new(),
        }
    }

    fn temp(&mut self) -> Temp {
        let t = Temp(self.temps);
        self.temps += 1;
        t
    }

    fn label(&mut self) -> Label {
        let l = Label(self.labels);
        self.labels += 1;
        l
    }

    fn emit(&mut self, i: Inst) {
        self.body.push(i);
    }

    fn lower(mut self, f: &Function) -> FuncIr {
        let params: Vec<Temp> = f
            .params
            .iter()
            .map(|p| {
                let t = self.temp();
                self.vars.insert(p.clone(), t);
                t
            })
            .collect();
        self.stmts(&f.body);
        // Guarantee a terminator: fall-off returns 0 (int) / nothing (void).
        let needs_ret = !matches!(self.body.last(), Some(Inst::Ret { .. }));
        if needs_ret {
            if f.returns_value {
                self.emit(Inst::Ret { value: Some(Operand::Const(0)) });
            } else {
                self.emit(Inst::Ret { value: None });
            }
        }
        FuncIr {
            name: f.name.clone(),
            params,
            returns_value: f.returns_value,
            body: self.body,
            temp_count: self.temps,
            label_count: self.labels,
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Local { name, init, .. } => {
                let t = self.temp();
                self.vars.insert(name.clone(), t);
                let value = match init {
                    Some(e) => self.expr(e),
                    None => Operand::Const(0),
                };
                self.emit(Inst::Copy { dst: t, src: value });
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.expr(value);
                if let Some(&t) = self.vars.get(name) {
                    self.emit(Inst::Copy { dst: t, src: v });
                } else {
                    self.emit(Inst::StoreGlobal { name: name.clone(), src: v });
                }
            }
            Stmt::AssignIndex { name, index, value, .. } => {
                let i = self.expr(index);
                let v = self.expr(value);
                self.emit(Inst::StoreElem { array: name.clone(), index: i, src: v });
            }
            Stmt::If { cond, then_body, else_body } => {
                let else_l = self.label();
                let end_l = self.label();
                let c = self.expr(cond);
                self.emit(Inst::Branch { cond: c, if_true: false, target: else_l });
                self.stmts(then_body);
                self.emit(Inst::Jump { target: end_l });
                self.emit(Inst::Label(else_l));
                self.stmts(else_body);
                self.emit(Inst::Label(end_l));
            }
            Stmt::While { cond, body } => {
                let head = self.label();
                let end = self.label();
                self.emit(Inst::Label(head));
                let c = self.expr(cond);
                self.emit(Inst::Branch { cond: c, if_true: false, target: end });
                self.loops.push((head, end));
                self.stmts(body);
                self.loops.pop();
                self.emit(Inst::Jump { target: head });
                self.emit(Inst::Label(end));
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(s) = init {
                    self.stmt(s);
                }
                let head = self.label();
                let step_l = self.label();
                let end = self.label();
                self.emit(Inst::Label(head));
                if let Some(c) = cond {
                    let cv = self.expr(c);
                    self.emit(Inst::Branch { cond: cv, if_true: false, target: end });
                }
                // `continue` targets the step, not the condition.
                self.loops.push((step_l, end));
                self.stmts(body);
                self.loops.pop();
                self.emit(Inst::Label(step_l));
                if let Some(s) = step {
                    self.stmt(s);
                }
                self.emit(Inst::Jump { target: head });
                self.emit(Inst::Label(end));
            }
            Stmt::Break { .. } => {
                let (_, end) = *self.loops.last().expect("sema guarantees loop context");
                self.emit(Inst::Jump { target: end });
            }
            Stmt::Continue { .. } => {
                let (next, _) = *self.loops.last().expect("sema guarantees loop context");
                self.emit(Inst::Jump { target: next });
            }
            Stmt::Return { value, .. } => {
                let v = value.as_ref().map(|e| self.expr(e));
                self.emit(Inst::Ret { value: v });
            }
            Stmt::Expr(e) => {
                self.expr(e);
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Int(v) => Operand::Const(*v),
            Expr::Var(name) => {
                if let Some(&t) = self.vars.get(name) {
                    Operand::Temp(t)
                } else {
                    let dst = self.temp();
                    self.emit(Inst::LoadGlobal { dst, name: name.clone() });
                    Operand::Temp(dst)
                }
            }
            Expr::Index { name, index } => {
                let i = self.expr(index);
                let dst = self.temp();
                self.emit(Inst::LoadElem { dst, array: name.clone(), index: i });
                Operand::Temp(dst)
            }
            Expr::Unary { op, operand } => {
                let v = self.expr(operand);
                let dst = self.temp();
                let inst = match op {
                    UnOp::Neg => {
                        Inst::Bin { op: BinKind::Sub, dst, lhs: Operand::Const(0), rhs: v }
                    }
                    UnOp::Not => {
                        Inst::Bin { op: BinKind::Xor, dst, lhs: v, rhs: Operand::Const(u32::MAX) }
                    }
                    UnOp::LogNot => {
                        Inst::Bin { op: BinKind::SetEq, dst, lhs: v, rhs: Operand::Const(0) }
                    }
                };
                self.emit(inst);
                Operand::Temp(dst)
            }
            Expr::Binary { op: BinOp::LogAnd, lhs, rhs } => self.short_circuit(lhs, rhs, true),
            Expr::Binary { op: BinOp::LogOr, lhs, rhs } => self.short_circuit(lhs, rhs, false),
            Expr::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let dst = self.temp();
                self.emit(Inst::Bin { op: bin_kind(*op), dst, lhs: l, rhs: r });
                Operand::Temp(dst)
            }
            Expr::Call { name, args } if name == "declassify" => {
                let src = self.expr(&args[0]);
                let dst = self.temp();
                self.emit(Inst::Declassify { dst, src });
                Operand::Temp(dst)
            }
            Expr::Call { name, args } => {
                let ops: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
                let returns = self.info.functions.get(name).map(|s| s.returns_value);
                let dst = if returns == Some(false) { None } else { Some(self.temp()) };
                self.emit(Inst::Call { dst, func: name.clone(), args: ops });
                match dst {
                    Some(t) => Operand::Temp(t),
                    None => Operand::Const(0),
                }
            }
        }
    }

    /// `a && b` / `a || b` with C short-circuit semantics, producing 0/1.
    fn short_circuit(&mut self, lhs: &Expr, rhs: &Expr, is_and: bool) -> Operand {
        let result = self.temp();
        let skip = self.label();
        let l = self.expr(lhs);
        // Normalize lhs to 0/1 into result.
        self.emit(Inst::Bin { op: BinKind::SetNe, dst: result, lhs: l, rhs: Operand::Const(0) });
        // AND: if lhs == 0 the answer is 0, skip rhs.
        // OR: if lhs != 0 the answer is 1, skip rhs.
        self.emit(Inst::Branch { cond: Operand::Temp(result), if_true: !is_and, target: skip });
        let r = self.expr(rhs);
        self.emit(Inst::Bin { op: BinKind::SetNe, dst: result, lhs: r, rhs: Operand::Const(0) });
        self.emit(Inst::Label(skip));
        Operand::Temp(result)
    }
}

fn bin_kind(op: BinOp) -> BinKind {
    match op {
        BinOp::Add => BinKind::Add,
        BinOp::Sub => BinKind::Sub,
        BinOp::Mul => BinKind::Mul,
        BinOp::Div => BinKind::Div,
        BinOp::Rem => BinKind::Rem,
        BinOp::And => BinKind::And,
        BinOp::Or => BinKind::Or,
        BinOp::Xor => BinKind::Xor,
        BinOp::Shl => BinKind::Shl,
        BinOp::Shr => BinKind::Shr,
        BinOp::Eq => BinKind::SetEq,
        BinOp::Ne => BinKind::SetNe,
        BinOp::Lt => BinKind::SetLt,
        BinOp::Le => BinKind::SetLe,
        BinOp::Gt => BinKind::SetGt,
        BinOp::Ge => BinKind::SetGe,
        BinOp::LogAnd | BinOp::LogOr => unreachable!("lowered via short_circuit"),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn lower_src(src: &str) -> Vec<FuncIr> {
        let unit = parse(src).expect("parse");
        let info = check(&unit).expect("sema");
        lower_unit(&unit, &info)
    }

    #[test]
    fn simple_return_lowered() {
        let fns = lower_src("int main() { return 1 + 2; }");
        let main = &fns[0];
        assert!(main.body.iter().any(|i| matches!(i, Inst::Bin { op: BinKind::Add, .. })));
        assert!(matches!(main.body.last(), Some(Inst::Ret { value: Some(_) })));
    }

    #[test]
    fn locals_become_temps() {
        let fns = lower_src("int main() { int x = 3; int y = x; return y; }");
        // No loads/stores: locals are pure temps.
        assert!(!fns[0]
            .body
            .iter()
            .any(|i| matches!(i, Inst::LoadGlobal { .. } | Inst::StoreGlobal { .. })));
    }

    #[test]
    fn globals_become_memory_ops() {
        let fns = lower_src("int g; int main() { g = 4; return g; }");
        assert!(fns[0].body.iter().any(|i| matches!(i, Inst::StoreGlobal { .. })));
        assert!(fns[0].body.iter().any(|i| matches!(i, Inst::LoadGlobal { .. })));
    }

    #[test]
    fn array_ops_lowered() {
        let fns = lower_src("int a[4]; int main() { a[1] = 9; return a[1]; }");
        assert!(fns[0].body.iter().any(|i| matches!(i, Inst::StoreElem { .. })));
        assert!(fns[0].body.iter().any(|i| matches!(i, Inst::LoadElem { .. })));
    }

    #[test]
    fn fall_off_returns_zero() {
        let fns = lower_src("int main() { int x = 1; }");
        assert!(matches!(fns[0].body.last(), Some(Inst::Ret { value: Some(Operand::Const(0)) })));
    }

    #[test]
    fn while_produces_loop_shape() {
        let fns = lower_src("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }");
        let labels = fns[0].body.iter().filter(|i| matches!(i, Inst::Label(_))).count();
        let jumps = fns[0].body.iter().filter(|i| matches!(i, Inst::Jump { .. })).count();
        let branches = fns[0].body.iter().filter(|i| matches!(i, Inst::Branch { .. })).count();
        assert_eq!((labels, jumps, branches), (2, 1, 1));
    }

    #[test]
    fn short_circuit_and_emits_branch() {
        let fns = lower_src("int main() { int a = 1; int b = 0; return a && b; }");
        assert!(fns[0].body.iter().any(|i| matches!(i, Inst::Branch { if_true: false, .. })));
    }

    #[test]
    fn short_circuit_or_emits_branch() {
        let fns = lower_src("int main() { int a = 1; int b = 0; return a || b; }");
        assert!(fns[0].body.iter().any(|i| matches!(i, Inst::Branch { if_true: true, .. })));
    }

    #[test]
    fn void_call_has_no_dst() {
        let fns = lower_src("void f() { } int main() { f(); return 0; }");
        let main = fns.iter().find(|f| f.name == "main").unwrap();
        assert!(main.body.iter().any(|i| matches!(i, Inst::Call { dst: None, .. })));
    }

    #[test]
    fn params_are_leading_temps() {
        let fns = lower_src("int f(int a, int b) { return a + b; } int main() { return f(1,2); }");
        let f = fns.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.params, vec![Temp(0), Temp(1)]);
    }

    #[test]
    fn unary_ops_lower_to_bin() {
        let fns = lower_src("int main() { int x = 5; return -x + ~x + !x; }");
        let subs = fns[0]
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinKind::Sub, lhs: Operand::Const(0), .. }))
            .count();
        assert_eq!(subs, 1);
    }
}
