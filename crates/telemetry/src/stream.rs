//! A bounded, backpressure-aware in-process event bus.
//!
//! [`EventBus`] is the concrete [`EventSink`] campaigns install when a
//! live consumer (the `repro --live-out` JSONL writer + progress line,
//! or the roadmap's campaign daemon) wants the stream: a fixed-capacity
//! queue under a `Mutex` + two `Condvar`s, dependency-free like the rest
//! of the workspace.
//!
//! ## Backpressure policy
//!
//! The bus distinguishes the two event kinds of
//! [`events`](crate::events):
//!
//! * [`EventBus::emit`] **blocks** when the queue is full — used for
//!   replayable events, which are part of the result and must never be
//!   lost. A slow consumer therefore throttles the producer instead of
//!   silently truncating the stream; the queue bound keeps memory O(1).
//! * [`EventBus::try_emit`] **drops** when the queue is full (counting
//!   the drops) — used for operational progress events, where the most
//!   recent state is all a progress line needs and stalling a worker
//!   pool to preserve every heartbeat would invert the priorities.
//!
//! The [`EventSink`] impl routes by [`Event::is_replayable`], so
//! producers that only know "here is a sink" still get the right policy
//! per event.

use crate::events::{Event, EventSink};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Default queue capacity: deep enough that a consumer flushing to disk
/// never stalls a worker in practice, small enough to bound memory.
pub const DEFAULT_BUS_CAPACITY: usize = 1024;

#[derive(Debug)]
struct BusState {
    queue: VecDeque<Event>,
    dropped: u64,
    /// Drops broken down by [`Event::kind`]. A `BTreeMap` keyed by the
    /// static kind tag keeps the readout deterministically ordered.
    dropped_kinds: BTreeMap<&'static str, u64>,
    closed: bool,
}

/// A bounded multi-producer single-consumer event queue.
///
/// Producers call [`emit`](EventBus::emit) / [`try_emit`](EventBus::try_emit)
/// (or go through the [`EventSink`] impl); one consumer loops on
/// [`drain_wait`](EventBus::drain_wait) until the producer side calls
/// [`close`](EventBus::close).
#[derive(Debug)]
pub struct EventBus {
    state: Mutex<BusState>,
    /// Signalled when events arrive or the bus closes (consumer waits).
    ready: Condvar,
    /// Signalled when the consumer drains (blocked producers wait).
    space: Condvar,
    capacity: usize,
}

impl EventBus {
    /// A bus holding at most `capacity` queued events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventBus {
            state: Mutex::new(BusState {
                queue: VecDeque::new(),
                dropped: 0,
                dropped_kinds: BTreeMap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a lossless event, blocking while the queue is full.
    /// After [`close`](EventBus::close) the event is discarded (the
    /// consumer is gone).
    pub fn emit(&self, event: Event) {
        let mut st = self.state.lock().expect("event bus poisoned");
        while st.queue.len() >= self.capacity && !st.closed {
            st = self.space.wait(st).expect("event bus poisoned");
        }
        if st.closed {
            return;
        }
        st.queue.push_back(event);
        drop(st);
        self.ready.notify_one();
    }

    /// Enqueues a lossy event; if the queue is full (or the bus is
    /// closed) the event is dropped and counted instead of blocking.
    pub fn try_emit(&self, event: Event) {
        let mut st = self.state.lock().expect("event bus poisoned");
        if st.closed || st.queue.len() >= self.capacity {
            st.dropped = st.dropped.saturating_add(1);
            let per_kind = st.dropped_kinds.entry(event.kind()).or_insert(0);
            *per_kind = per_kind.saturating_add(1);
            return;
        }
        st.queue.push_back(event);
        drop(st);
        self.ready.notify_one();
    }

    /// Moves every queued event into `buf`, waiting for at least one if
    /// the queue is empty. Returns `false` once the bus is closed *and*
    /// drained — the consumer's loop condition.
    pub fn drain_wait(&self, buf: &mut Vec<Event>) -> bool {
        let mut st = self.state.lock().expect("event bus poisoned");
        while st.queue.is_empty() && !st.closed {
            st = self.ready.wait(st).expect("event bus poisoned");
        }
        let had = !st.queue.is_empty();
        buf.extend(st.queue.drain(..));
        let open = had || !st.closed;
        drop(st);
        self.space.notify_all();
        open
    }

    /// Closes the bus: blocked producers unblock (their events are
    /// dropped), and the consumer drains what remains and stops.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("event bus poisoned");
        st.closed = true;
        drop(st);
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Number of lossy events dropped under backpressure so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("event bus poisoned").dropped
    }

    /// The drops broken down by event kind, ascending by kind tag.
    /// Entries sum to [`EventBus::dropped`].
    #[must_use]
    pub fn dropped_by_kind(&self) -> Vec<(String, u64)> {
        let st = self.state.lock().expect("event bus poisoned");
        st.dropped_kinds.iter().map(|(&k, &n)| (k.to_string(), n)).collect()
    }

    /// Events currently queued (diagnostic).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("event bus poisoned").queue.len()
    }

    /// Whether the queue is currently empty (diagnostic).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new(DEFAULT_BUS_CAPACITY)
    }
}

impl EventSink for EventBus {
    /// Replayable events take the lossless blocking path; operational
    /// events take the lossy one.
    fn emit(&self, event: Event) {
        if event.is_replayable() {
            EventBus::emit(self, event);
        } else {
            self.try_emit(event);
        }
    }

    /// Operational events dropped under backpressure so far.
    fn dropped(&self) -> u64 {
        EventBus::dropped(self)
    }

    /// The drops broken down by event kind.
    fn dropped_by_kind(&self) -> Vec<(String, u64)> {
        EventBus::dropped_by_kind(self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let bus = EventBus::new(8);
        for t in 0..5 {
            bus.emit(Event::TrialCompleted { trial: t });
        }
        bus.close();
        let mut buf = Vec::new();
        while bus.drain_wait(&mut buf) {}
        let trials: Vec<u64> = buf
            .iter()
            .map(|e| match e {
                Event::TrialCompleted { trial } => *trial,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(trials, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drops_are_counted_per_kind() {
        let bus = EventBus::new(1);
        bus.try_emit(Event::TrialCompleted { trial: 0 }); // fills the queue
        bus.try_emit(Event::TrialCompleted { trial: 1 });
        bus.try_emit(Event::TrialCompleted { trial: 2 });
        bus.try_emit(Event::ShardCompleted { shard: 0, len: 4 });
        assert_eq!(bus.dropped(), 3);
        assert_eq!(
            bus.dropped_by_kind(),
            vec![("shard_completed".to_string(), 1), ("trial_completed".to_string(), 2)],
            "ascending by kind tag"
        );
        let total: u64 = EventSink::dropped_by_kind(&bus).iter().map(|(_, n)| n).sum();
        assert_eq!(total, EventSink::dropped(&bus), "breakdown sums to the aggregate");
    }

    #[test]
    fn try_emit_drops_and_counts_when_full() {
        let bus = EventBus::new(2);
        bus.try_emit(Event::TrialCompleted { trial: 0 });
        bus.try_emit(Event::TrialCompleted { trial: 1 });
        bus.try_emit(Event::TrialCompleted { trial: 2 });
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.dropped(), 1);
    }

    #[test]
    fn blocking_emit_waits_for_the_consumer() {
        let bus = EventBus::new(1);
        bus.emit(Event::CampaignCompleted {
            trials: 1,
            dropped_events: 0,
            dropped_by_kind: vec![],
        });
        thread::scope(|scope| {
            scope.spawn(|| {
                // Blocks until the consumer below makes space.
                bus.emit(Event::CampaignCompleted {
                    trials: 2,
                    dropped_events: 0,
                    dropped_by_kind: vec![],
                });
                bus.close();
            });
            let mut buf = Vec::new();
            while bus.drain_wait(&mut buf) {}
            assert_eq!(buf.len(), 2);
            assert_eq!(bus.dropped(), 0, "lossless path never drops");
        });
    }

    #[test]
    fn close_unblocks_producers_and_ends_the_consumer() {
        let bus = EventBus::new(1);
        bus.emit(Event::CampaignCompleted {
            trials: 1,
            dropped_events: 0,
            dropped_by_kind: vec![],
        });
        thread::scope(|scope| {
            scope.spawn(|| {
                bus.close();
            });
            // The blocked emit must return (dropping its event) …
            bus.emit(Event::CampaignCompleted {
                trials: 2,
                dropped_events: 0,
                dropped_by_kind: vec![],
            });
            // … and the consumer must terminate after draining.
            let mut buf = Vec::new();
            while bus.drain_wait(&mut buf) {}
            assert_eq!(buf.len(), 1);
        });
    }

    #[test]
    fn drain_after_all_senders_drop_yields_every_buffered_event() {
        let bus = EventBus::new(8);
        thread::scope(|scope| {
            for p in 0..3u64 {
                let bus = &bus;
                scope.spawn(move || {
                    bus.emit(Event::FaultOutcome { trial: p, outcome: "no-effect".into() });
                });
            }
        });
        // Every producer has exited; nothing further can arrive. A close
        // followed by a drain must still surface everything buffered.
        bus.close();
        let mut buf = Vec::new();
        while bus.drain_wait(&mut buf) {}
        assert_eq!(buf.len(), 3, "buffered events survive sender teardown");
        assert!(!bus.drain_wait(&mut buf), "a closed, empty bus ends the consumer");
        assert_eq!(bus.dropped(), 0, "the lossless path dropped nothing");
    }

    #[test]
    fn sink_dropped_surfaces_the_bus_counter() {
        let bus = EventBus::new(1);
        EventSink::emit(&bus, Event::TrialCompleted { trial: 0 });
        EventSink::emit(&bus, Event::TrialCompleted { trial: 1 });
        assert_eq!(EventSink::dropped(&bus), 1);
        assert_eq!(EventSink::dropped(&&bus), 1, "forwarding impl keeps the counter visible");
    }

    #[test]
    fn sink_impl_routes_by_replayability() {
        let bus = EventBus::new(1);
        // Operational events on a full queue drop instead of deadlocking
        // a single-threaded producer.
        EventSink::emit(&bus, Event::TrialCompleted { trial: 0 });
        EventSink::emit(&bus, Event::TrialCompleted { trial: 1 });
        assert_eq!(bus.dropped(), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing_on_the_lossless_path() {
        let bus = EventBus::new(4);
        const PER: u64 = 200;
        thread::scope(|scope| {
            for p in 0..3u64 {
                let bus = &bus;
                scope.spawn(move || {
                    for t in 0..PER {
                        bus.emit(Event::FaultOutcome {
                            trial: p * PER + t,
                            outcome: "no-effect".into(),
                        });
                    }
                });
            }
            scope.spawn(|| {
                // Give producers a head start against the tiny queue.
                let mut buf = Vec::new();
                let mut seen = 0;
                while bus.drain_wait(&mut buf) {
                    seen += buf.len();
                    buf.clear();
                    if seen == 3 * PER as usize {
                        bus.close();
                    }
                }
                assert_eq!(seen, 3 * PER as usize);
            });
        });
        assert_eq!(bus.dropped(), 0);
    }
}
