//! CSV and human-readable exports.
//!
//! * [`CycleCsv`] — a [`RunObserver`] that streams every cycle's
//!   per-component energy into a CSV document;
//! * [`metrics_csv`] — per-phase × per-component energy totals from a
//!   [`MetricsSnapshot`] (the `--metrics-out` format);
//! * [`summary`] — the human-readable run report behind `--summary`;
//! * [`campaign_csv`] / [`campaign_summary`] — one row per
//!   fault-injection trial ([`CampaignTrial`]) and the classified outcome
//!   totals of a whole campaign (the `--fault-out` formats).

use crate::metrics::{op_class_name, MetricsSnapshot, OP_CLASSES};
use crate::observer::{PhaseEvent, RunObserver};
use emask_cpu::{CycleActivity, RunResult};
use emask_energy::{ComponentEnergy, CycleEnergy};
use std::fmt::Write as _;

/// The component column order shared by both CSV exports.
pub const COMPONENT_COLUMNS: [&str; 9] = [
    "inst_bus",
    "operand_latches",
    "functional_units",
    "result_bus",
    "mem_bus",
    "writeback_latch",
    "regfile",
    "memory",
    "clock",
];

fn component_values(e: &ComponentEnergy) -> [f64; 9] {
    [
        e.inst_bus,
        e.operand_latches,
        e.functional_units,
        e.result_bus,
        e.mem_bus,
        e.writeback_latch,
        e.regfile,
        e.memory,
        e.clock,
    ]
}

/// Streams per-cycle component energy into CSV (`--trace-out`'s sibling
/// dump; header `cycle,<components…>,total,phase`).
#[derive(Debug, Clone)]
pub struct CycleCsv {
    out: String,
    phase: String,
}

impl Default for CycleCsv {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleCsv {
    /// An empty document with the header row written.
    pub fn new() -> Self {
        let mut out = String::from("cycle");
        for c in COMPONENT_COLUMNS {
            out.push(',');
            out.push_str(c);
        }
        out.push_str(",total,phase\n");
        CycleCsv { out, phase: "startup".to_string() }
    }

    /// The finished CSV document.
    pub fn into_csv(self) -> String {
        self.out
    }
}

impl RunObserver for CycleCsv {
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        let _ = write!(self.out, "{}", act.cycle);
        for v in component_values(&energy.components) {
            let _ = write!(self.out, ",{v}");
        }
        let _ = writeln!(self.out, ",{},{}", energy.total_pj(), self.phase);
    }

    fn on_phase(&mut self, event: &PhaseEvent) {
        self.phase = event.name.clone();
    }

    fn on_finish(&mut self, _stats: &RunResult) {}
}

/// Renders per-phase × per-component energy totals as CSV.
///
/// One row per phase (marker order, including the synthetic `startup`
/// region) plus a trailing `total` row; columns are
/// `phase,start_cycle,cycles,<components…>,total_pj,min_pj,max_pj,p50_pj,p95_pj,p99_pj`.
/// Each named phase's `total_pj` equals the sum of
/// `EncryptionRun::phase_trace` for that phase, by the shared
/// start-inclusive attribution convention. The five distribution columns
/// describe the run-wide per-cycle energy histogram
/// ([`MetricsSnapshot::cycle_energy`], quantiles per
/// [`Histogram::quantile`](crate::Histogram::quantile)); the histogram is
/// not phase-attributed, so phase rows leave them empty and only the
/// `total` row carries values.
pub fn metrics_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("phase,start_cycle,cycles");
    for c in COMPONENT_COLUMNS {
        out.push(',');
        out.push_str(c);
    }
    out.push_str(",total_pj,min_pj,max_pj,p50_pj,p95_pj,p99_pj\n");
    for p in &snap.phases {
        let _ = write!(out, "{},{},{}", p.name, p.start_cycle, p.cycles);
        for v in component_values(&p.energy) {
            let _ = write!(out, ",{v}");
        }
        let _ = writeln!(out, ",{},,,,,", p.energy.total());
    }
    let _ = write!(out, "total,0,{}", snap.cycles);
    for v in component_values(&snap.energy) {
        let _ = write!(out, ",{v}");
    }
    let h = &snap.cycle_energy;
    let _ = writeln!(
        out,
        ",{},{},{},{},{},{}",
        snap.energy.total(),
        h.min(),
        h.max(),
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99)
    );
    out
}

/// Renders the human-readable run report (`--summary`).
pub fn summary(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run summary");
    let _ = writeln!(out, "===========");
    let _ = writeln!(
        out,
        "cycles {:>12}   retired {:>12}   ipc {:.3}",
        snap.cycles,
        snap.retired,
        snap.ipc()
    );
    let _ = writeln!(
        out,
        "stalls {:>12}   flushed {:>12}   secure cycles {} ({:.1}%)",
        snap.stall_cycles,
        snap.flushed,
        snap.secure_cycles,
        if snap.cycles == 0 { 0.0 } else { 100.0 * snap.secure_cycles as f64 / snap.cycles as f64 }
    );
    let _ = writeln!(
        out,
        "energy {:>12.1} pJ ({:.3} µJ), mean {:.1} pJ/cycle, peak {:.1} pJ",
        snap.total_pj(),
        snap.total_pj() / 1e6,
        snap.cycle_energy.mean(),
        snap.cycle_energy.max()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "instruction mix (normal / secure)");
    for (i, &class) in OP_CLASSES.iter().enumerate() {
        let m = snap.mix[i];
        if m.total() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>10} / {:<10} ({:.1}%)",
            op_class_name(class),
            m.normal,
            m.secure,
            if snap.retired == 0 { 0.0 } else { 100.0 * m.total() as f64 / snap.retired as f64 }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "phase energy");
    for p in &snap.phases {
        let _ = writeln!(
            out,
            "  {:<22} @{:<9} {:>8} cycles {:>14.1} pJ ({:>5.1} pJ data-dep/cycle)",
            p.name,
            p.start_cycle,
            p.cycles,
            p.energy.total(),
            if p.cycles == 0 { 0.0 } else { p.energy.data_dependent() / p.cycles as f64 }
        );
    }
    out
}

/// [`summary`] with the execution host's context appended — the
/// self-describing form campaign reports and `BENCH_*.json` entries use,
/// so a number measured in a constrained container says so.
pub fn summary_with_host(snap: &MetricsSnapshot, host: &HostContext) -> String {
    let mut out = summary(snap);
    out.push('\n');
    out.push_str(&host.render());
    out
}

/// The execution host's context, recorded alongside benchmark and
/// campaign reports so numbers from constrained containers (a
/// single-CPU CI runner, a pinned cpuset) are self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostContext {
    /// CPUs visible to this process (`std::thread::available_parallelism`).
    pub cpus: usize,
    /// The cgroup cpuset restriction, when one is readable (e.g. `0-3`).
    pub cpuset: Option<String>,
    /// The `--jobs` worker count in effect, when the caller has one.
    pub jobs: Option<usize>,
}

impl HostContext {
    /// One human-readable line, appended to run/campaign summaries.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("host: {} cpu(s) visible", self.cpus);
        if let Some(set) = &self.cpuset {
            let _ = write!(out, ", cpuset {set}");
        }
        if let Some(jobs) = self.jobs {
            let _ = write!(out, ", jobs {jobs}");
        }
        out.push('\n');
        out
    }

    /// The same facts as a JSON object fragment, for `BENCH_*.json`
    /// entries (hand-assembled; no serde in the build).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(r#"{{"cpus":{}"#, self.cpus);
        if let Some(set) = &self.cpuset {
            let _ = write!(out, r#","cpuset":"{}""#, crate::chrome::escape_json(set));
        }
        if let Some(jobs) = self.jobs {
            let _ = write!(out, r#","jobs":{jobs}"#);
        }
        out.push('}');
        out
    }
}

/// Detects the host context: visible CPU count, the cgroup cpuset (v2
/// `cpuset.cpus.effective`, falling back to the v1 path) when readable,
/// and the caller's `--jobs` setting.
#[must_use]
pub fn host_context(jobs: Option<usize>) -> HostContext {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cpuset = ["/sys/fs/cgroup/cpuset.cpus.effective", "/sys/fs/cgroup/cpuset/cpuset.cpus"]
        .iter()
        .find_map(|p| std::fs::read_to_string(p).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    HostContext { cpus, cpuset, jobs }
}

/// One fault-injection trial's result, as reported by a campaign runner.
///
/// Telemetry deliberately knows nothing about fault plans; the campaign
/// harness renders its targets, models and outcomes to stable short
/// strings so this layer stays a pure exporter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignTrial {
    /// Trial index within the campaign.
    pub index: usize,
    /// The cycle (or first cycle) at which the fault was scheduled.
    pub cycle: u64,
    /// The bit position disturbed.
    pub bit: u8,
    /// Target name (e.g. `id_ex.a`, `regfile`, `memory`).
    pub target: String,
    /// Fault-model name (e.g. `bit-flip`, `stuck-at`, `glitch`).
    pub model: String,
    /// Outcome classification (e.g. `no-effect`, `detected`,
    /// `wrong-ciphertext`, `crash`, `hang`).
    pub outcome: String,
    /// Free-form detail (an error message, or empty).
    pub detail: String,
}

/// Renders campaign trials as CSV, one row per trial
/// (`trial,cycle,bit,target,model,outcome,detail`). Commas and newlines
/// in the free-form detail are replaced with `;` so the document stays
/// one-row-per-trial without a quoting dialect.
pub fn campaign_csv(trials: &[CampaignTrial]) -> String {
    let mut out = String::from("trial,cycle,bit,target,model,outcome,detail\n");
    for t in trials {
        let detail: String =
            t.detail.chars().map(|c| if c == ',' || c == '\n' { ';' } else { c }).collect();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{detail}",
            t.index, t.cycle, t.bit, t.target, t.model, t.outcome
        );
    }
    out
}

/// Renders a campaign's classified outcome totals: one
/// `<outcome> <count> (<percent>)` line per outcome in first-seen order,
/// then a `sum N/N` line asserting every trial was classified.
pub fn campaign_summary(trials: &[CampaignTrial]) -> String {
    let mut order: Vec<&str> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for t in trials {
        match order.iter().position(|&o| o == t.outcome) {
            Some(i) => counts[i] += 1,
            None => {
                order.push(&t.outcome);
                counts.push(1);
            }
        }
    }
    let mut out = String::from("fault campaign summary\n======================\n");
    let total = trials.len();
    for (o, n) in order.iter().zip(&counts) {
        let pct = if total == 0 { 0.0 } else { 100.0 * *n as f64 / total as f64 };
        let _ = writeln!(out, "  {o:<18} {n:>6} ({pct:.1}%)");
    }
    let classified: usize = counts.iter().sum();
    let _ = writeln!(out, "  sum {classified}/{total}");
    out
}

/// Aggregate checkpoint/rollback counters for a whole campaign or batch
/// of recovered runs.
///
/// Telemetry deliberately knows nothing about recovery policies; the
/// runner reports its per-run counters as plain numbers through
/// [`RecoveryTotals::absorb`] and this layer stays a pure aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryTotals {
    /// Runs absorbed into these totals.
    pub runs: u64,
    /// Checkpoints taken across all runs (excluding the implicit one at
    /// cycle 0 of each run).
    pub checkpoints: u64,
    /// Rollback/re-execute events across all runs.
    pub rollbacks: u64,
    /// Dirty pages moved by checkpoint refreshes and restores — the
    /// measurable memory cost of the incremental checkpoint scheme.
    pub pages_moved: u64,
}

impl RecoveryTotals {
    /// Folds one run's recovery counters into the totals.
    pub fn absorb(&mut self, checkpoints: u64, rollbacks: u64, pages_moved: u64) {
        self.runs += 1;
        self.checkpoints += checkpoints;
        self.rollbacks += rollbacks;
        self.pages_moved += pages_moved;
    }

    /// Merges another accumulator into this one (shard reduction).
    pub fn merge(&mut self, other: &RecoveryTotals) {
        self.runs += other.runs;
        self.checkpoints += other.checkpoints;
        self.rollbacks += other.rollbacks;
        self.pages_moved += other.pages_moved;
    }
}

/// Renders the aggregate checkpoint/rollback counters as a short
/// human-readable block (appended to the campaign summary when recovery
/// is enabled).
pub fn recovery_summary(totals: &RecoveryTotals) -> String {
    let mut out = String::from("recovery totals\n---------------\n");
    let _ = writeln!(out, "  runs        {:>8}", totals.runs);
    let _ = writeln!(out, "  checkpoints {:>8}", totals.checkpoints);
    let _ = writeln!(out, "  rollbacks   {:>8}", totals.rollbacks);
    let _ = writeln!(out, "  pages moved {:>8}", totals.pages_moved);
    out
}

/// Renders detection→recovery coverage per fault target: for each target
/// (first-seen order), how many trials were run, how many faults were
/// *detected* (outcomes `detected`, `recovered`, `zeroized`), and how
/// many of those detections were *handled* safely (`recovered` — the run
/// completed with a correct result — or `zeroized` — the key was
/// destroyed before disclosure). The final column is handled/detected.
pub fn recovery_coverage(trials: &[CampaignTrial]) -> String {
    struct Row {
        trials: usize,
        detected: usize,
        recovered: usize,
        zeroized: usize,
    }
    let mut order: Vec<&str> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for t in trials {
        let i = match order.iter().position(|&o| o == t.target) {
            Some(i) => i,
            None => {
                order.push(&t.target);
                rows.push(Row { trials: 0, detected: 0, recovered: 0, zeroized: 0 });
                rows.len() - 1
            }
        };
        let row = &mut rows[i];
        row.trials += 1;
        match t.outcome.as_str() {
            "detected" => row.detected += 1,
            "recovered" => row.recovered += 1,
            "zeroized" => row.zeroized += 1,
            _ => {}
        }
    }
    let mut out = String::from("detection\u{2192}recovery coverage by target\n");
    out.push_str("target                 trials  detected  recovered  zeroized  coverage\n");
    let mut tot = Row { trials: 0, detected: 0, recovered: 0, zeroized: 0 };
    for (name, r) in order.iter().zip(&rows) {
        let detections = r.detected + r.recovered + r.zeroized;
        let handled = r.recovered + r.zeroized;
        let cov = if detections == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * handled as f64 / detections as f64)
        };
        let _ = writeln!(
            out,
            "  {name:<20} {:>6} {:>9} {:>10} {:>9} {cov:>9}",
            r.trials, detections, r.recovered, r.zeroized
        );
        tot.trials += r.trials;
        tot.detected += detections;
        tot.recovered += r.recovered;
        tot.zeroized += r.zeroized;
    }
    let handled = tot.recovered + tot.zeroized;
    let cov = if tot.detected == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * handled as f64 / tot.detected as f64)
    };
    let _ = writeln!(
        out,
        "  {:<20} {:>6} {:>9} {:>10} {:>9} {cov:>9}",
        "total", tot.trials, tot.detected, tot.recovered, tot.zeroized
    );
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn tiny_snapshot() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let energy = CycleEnergy {
            cycle: 0,
            components: ComponentEnergy { clock: 2.0, regfile: 1.0, ..Default::default() },
        };
        reg.on_cycle(&CycleActivity::idle(0), &energy);
        reg.on_phase(&PhaseEvent { name: "round 1".into(), cycle: 1, index: 0 });
        reg.on_cycle(&CycleActivity::idle(1), &energy);
        reg.on_finish(&RunResult::default());
        reg.snapshot()
    }

    #[test]
    fn metrics_csv_has_phase_and_total_rows() {
        let snap = tiny_snapshot();
        let csv = metrics_csv(&snap);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + startup + round 1 + total
        assert!(lines[0].starts_with("phase,start_cycle,cycles,inst_bus"));
        assert!(lines[0].ends_with(",total_pj,min_pj,max_pj,p50_pj,p95_pj,p99_pj"));
        assert!(lines[1].starts_with("startup,0,1,"));
        assert!(lines[2].starts_with("round 1,1,1,"));
        assert!(lines[3].starts_with("total,0,2,"));
        // Every row has a value (possibly empty) for every header column.
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
        // The distribution columns are phase-blind: empty on phase rows,
        // populated from the run-wide histogram on the total row.
        let fields = |line: &str| line.split(',').map(str::to_string).collect::<Vec<_>>();
        for line in &lines[1..3] {
            assert!(fields(line)[cols - 5..].iter().all(String::is_empty), "{line}");
        }
        let total_fields = fields(lines[3]);
        assert_eq!(total_fields[cols - 5], format!("{}", snap.cycle_energy.min()));
        assert_eq!(total_fields[cols - 4], format!("{}", snap.cycle_energy.max()));
        assert_eq!(total_fields[cols - 3], format!("{}", snap.cycle_energy.quantile(0.50)));
        // Phase totals sum to the grand total (total_pj is 6th from the end).
        let total = |line: &str| fields(line)[cols - 6].parse::<f64>().unwrap();
        assert!((total(lines[1]) + total(lines[2]) - total(lines[3])).abs() < 1e-12);
    }

    #[test]
    fn cycle_csv_tags_rows_with_the_current_phase() {
        let mut csv = CycleCsv::new();
        let energy = CycleEnergy { cycle: 0, components: ComponentEnergy::default() };
        csv.on_cycle(&CycleActivity::idle(0), &energy);
        csv.on_phase(&PhaseEvent { name: "key permutation".into(), cycle: 1, index: 0 });
        let energy1 = CycleEnergy { cycle: 1, components: ComponentEnergy::default() };
        csv.on_cycle(&CycleActivity::idle(1), &energy1);
        let doc = csv.into_csv();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].ends_with(",startup"));
        assert!(lines[2].ends_with(",key permutation"));
        // Header column count matches data column count.
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    fn trial(i: usize, outcome: &str, detail: &str) -> CampaignTrial {
        CampaignTrial {
            index: i,
            cycle: 10 * i as u64,
            bit: (i % 32) as u8,
            target: "id_ex.a".into(),
            model: "bit-flip".into(),
            outcome: outcome.into(),
            detail: detail.into(),
        }
    }

    #[test]
    fn campaign_csv_is_one_row_per_trial_with_sanitized_detail() {
        let trials = vec![
            trial(0, "no-effect", ""),
            trial(1, "crash", "cycle 3: fault, with comma\nnewline"),
        ];
        let csv = campaign_csv(&trials);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "trial,cycle,bit,target,model,outcome,detail");
        assert_eq!(lines[1], "0,0,0,id_ex.a,bit-flip,no-effect,");
        // The detail's comma and newline were flattened to ';'.
        assert_eq!(lines[2].split(',').count(), lines[0].split(',').count());
        assert!(lines[2].ends_with("cycle 3: fault; with comma;newline"));
    }

    #[test]
    fn campaign_summary_totals_classify_every_trial() {
        let trials = vec![
            trial(0, "no-effect", ""),
            trial(1, "detected", ""),
            trial(2, "no-effect", ""),
            trial(3, "wrong-ciphertext", ""),
        ];
        let s = campaign_summary(&trials);
        assert!(s.contains("no-effect"));
        assert!(s.contains("2 (50.0%)"));
        assert!(s.contains("sum 4/4"));
        assert!(campaign_summary(&[]).contains("sum 0/0"));
    }

    #[test]
    fn recovery_totals_absorb_and_merge() {
        let mut a = RecoveryTotals::default();
        a.absorb(3, 1, 40);
        a.absorb(2, 0, 10);
        assert_eq!(a, RecoveryTotals { runs: 2, checkpoints: 5, rollbacks: 1, pages_moved: 50 });
        let mut b = RecoveryTotals::default();
        b.absorb(1, 2, 5);
        a.merge(&b);
        assert_eq!(a.runs, 3);
        assert_eq!(a.rollbacks, 3);
        let s = recovery_summary(&a);
        assert!(s.contains("rollbacks"));
        assert!(s.contains("3"));
    }

    #[test]
    fn recovery_coverage_groups_by_target() {
        let mut t0 = trial(0, "recovered", "");
        t0.target = "regfile:r8".into();
        let mut t1 = trial(1, "zeroized", "");
        t1.target = "regfile:r8".into();
        let t2 = trial(2, "no-effect", "");
        let cov = recovery_coverage(&[t0, t1, t2]);
        assert!(cov.contains("regfile:r8"), "{cov}");
        assert!(cov.contains("100.0%"), "{cov}");
        // The no-effect-only target has no detections: coverage is '-'.
        let id_ex = cov.lines().find(|l| l.trim_start().starts_with("id_ex.a")).expect("row");
        assert!(id_ex.trim_end().ends_with('-'), "{id_ex}");
        assert!(cov.lines().last().expect("total").trim_start().starts_with("total"));
    }

    #[test]
    fn host_context_reports_cpus_and_renders_both_formats() {
        let ctx = host_context(Some(4));
        assert!(ctx.cpus >= 1);
        assert_eq!(ctx.jobs, Some(4));
        let line = ctx.render();
        assert!(line.starts_with("host: "), "{line}");
        assert!(line.contains("jobs 4"), "{line}");
        let json = ctx.to_json();
        assert!(json.starts_with(r#"{"cpus":"#), "{json}");
        assert!(json.contains(r#""jobs":4"#), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Without a jobs setting, the field is simply absent.
        let bare = HostContext { cpus: 1, cpuset: None, jobs: None };
        assert_eq!(bare.render(), "host: 1 cpu(s) visible\n");
        assert_eq!(bare.to_json(), r#"{"cpus":1}"#);
        let pinned = HostContext { cpus: 8, cpuset: Some("0-3".into()), jobs: Some(2) };
        assert_eq!(pinned.render(), "host: 8 cpu(s) visible, cpuset 0-3, jobs 2\n");
        assert_eq!(pinned.to_json(), r#"{"cpus":8,"cpuset":"0-3","jobs":2}"#);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let s = summary(&tiny_snapshot());
        assert!(s.contains("run summary"));
        assert!(s.contains("cycles"));
        assert!(s.contains("round 1"));
        assert!(s.contains("pJ"));
    }
}
