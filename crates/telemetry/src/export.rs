//! CSV and human-readable exports.
//!
//! * [`CycleCsv`] — a [`RunObserver`] that streams every cycle's
//!   per-component energy into a CSV document;
//! * [`metrics_csv`] — per-phase × per-component energy totals from a
//!   [`MetricsSnapshot`] (the `--metrics-out` format);
//! * [`summary`] — the human-readable run report behind `--summary`.

use crate::metrics::{op_class_name, MetricsSnapshot, OP_CLASSES};
use crate::observer::{PhaseEvent, RunObserver};
use emask_cpu::{CycleActivity, RunResult};
use emask_energy::{ComponentEnergy, CycleEnergy};
use std::fmt::Write as _;

/// The component column order shared by both CSV exports.
pub const COMPONENT_COLUMNS: [&str; 9] = [
    "inst_bus",
    "operand_latches",
    "functional_units",
    "result_bus",
    "mem_bus",
    "writeback_latch",
    "regfile",
    "memory",
    "clock",
];

fn component_values(e: &ComponentEnergy) -> [f64; 9] {
    [
        e.inst_bus,
        e.operand_latches,
        e.functional_units,
        e.result_bus,
        e.mem_bus,
        e.writeback_latch,
        e.regfile,
        e.memory,
        e.clock,
    ]
}

/// Streams per-cycle component energy into CSV (`--trace-out`'s sibling
/// dump; header `cycle,<components…>,total,phase`).
#[derive(Debug, Clone)]
pub struct CycleCsv {
    out: String,
    phase: String,
}

impl Default for CycleCsv {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleCsv {
    /// An empty document with the header row written.
    pub fn new() -> Self {
        let mut out = String::from("cycle");
        for c in COMPONENT_COLUMNS {
            out.push(',');
            out.push_str(c);
        }
        out.push_str(",total,phase\n");
        CycleCsv { out, phase: "startup".to_string() }
    }

    /// The finished CSV document.
    pub fn into_csv(self) -> String {
        self.out
    }
}

impl RunObserver for CycleCsv {
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        let _ = write!(self.out, "{}", act.cycle);
        for v in component_values(&energy.components) {
            let _ = write!(self.out, ",{v}");
        }
        let _ = writeln!(self.out, ",{},{}", energy.total_pj(), self.phase);
    }

    fn on_phase(&mut self, event: &PhaseEvent) {
        self.phase = event.name.clone();
    }

    fn on_finish(&mut self, _stats: &RunResult) {}
}

/// Renders per-phase × per-component energy totals as CSV.
///
/// One row per phase (marker order, including the synthetic `startup`
/// region) plus a trailing `total` row; columns are
/// `phase,start_cycle,cycles,<components…>,total_pj`. Each named phase's
/// `total_pj` equals the sum of `EncryptionRun::phase_trace` for that
/// phase, by the shared start-inclusive attribution convention.
pub fn metrics_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("phase,start_cycle,cycles");
    for c in COMPONENT_COLUMNS {
        out.push(',');
        out.push_str(c);
    }
    out.push_str(",total_pj\n");
    for p in &snap.phases {
        let _ = write!(out, "{},{},{}", p.name, p.start_cycle, p.cycles);
        for v in component_values(&p.energy) {
            let _ = write!(out, ",{v}");
        }
        let _ = writeln!(out, ",{}", p.energy.total());
    }
    let _ = write!(out, "total,0,{}", snap.cycles);
    for v in component_values(&snap.energy) {
        let _ = write!(out, ",{v}");
    }
    let _ = writeln!(out, ",{}", snap.energy.total());
    out
}

/// Renders the human-readable run report (`--summary`).
pub fn summary(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run summary");
    let _ = writeln!(out, "===========");
    let _ = writeln!(
        out,
        "cycles {:>12}   retired {:>12}   ipc {:.3}",
        snap.cycles,
        snap.retired,
        snap.ipc()
    );
    let _ = writeln!(
        out,
        "stalls {:>12}   flushed {:>12}   secure cycles {} ({:.1}%)",
        snap.stall_cycles,
        snap.flushed,
        snap.secure_cycles,
        if snap.cycles == 0 { 0.0 } else { 100.0 * snap.secure_cycles as f64 / snap.cycles as f64 }
    );
    let _ = writeln!(
        out,
        "energy {:>12.1} pJ ({:.3} µJ), mean {:.1} pJ/cycle, peak {:.1} pJ",
        snap.total_pj(),
        snap.total_pj() / 1e6,
        snap.cycle_energy.mean(),
        snap.cycle_energy.max()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "instruction mix (normal / secure)");
    for (i, &class) in OP_CLASSES.iter().enumerate() {
        let m = snap.mix[i];
        if m.total() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>10} / {:<10} ({:.1}%)",
            op_class_name(class),
            m.normal,
            m.secure,
            if snap.retired == 0 { 0.0 } else { 100.0 * m.total() as f64 / snap.retired as f64 }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "phase energy");
    for p in &snap.phases {
        let _ = writeln!(
            out,
            "  {:<22} @{:<9} {:>8} cycles {:>14.1} pJ ({:>5.1} pJ data-dep/cycle)",
            p.name,
            p.start_cycle,
            p.cycles,
            p.energy.total(),
            if p.cycles == 0 { 0.0 } else { p.energy.data_dependent() / p.cycles as f64 }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn tiny_snapshot() -> MetricsSnapshot {
        let mut reg = MetricsRegistry::new();
        let energy = CycleEnergy {
            cycle: 0,
            components: ComponentEnergy { clock: 2.0, regfile: 1.0, ..Default::default() },
        };
        reg.on_cycle(&CycleActivity::idle(0), &energy);
        reg.on_phase(&PhaseEvent { name: "round 1".into(), cycle: 1, index: 0 });
        reg.on_cycle(&CycleActivity::idle(1), &energy);
        reg.on_finish(&RunResult::default());
        reg.snapshot()
    }

    #[test]
    fn metrics_csv_has_phase_and_total_rows() {
        let csv = metrics_csv(&tiny_snapshot());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + startup + round 1 + total
        assert!(lines[0].starts_with("phase,start_cycle,cycles,inst_bus"));
        assert!(lines[1].starts_with("startup,0,1,"));
        assert!(lines[2].starts_with("round 1,1,1,"));
        assert!(lines[3].starts_with("total,0,2,"));
        // Phase totals sum to the grand total.
        let total = |line: &str| line.rsplit(',').next().unwrap().parse::<f64>().unwrap();
        assert!((total(lines[1]) + total(lines[2]) - total(lines[3])).abs() < 1e-12);
    }

    #[test]
    fn cycle_csv_tags_rows_with_the_current_phase() {
        let mut csv = CycleCsv::new();
        let energy = CycleEnergy { cycle: 0, components: ComponentEnergy::default() };
        csv.on_cycle(&CycleActivity::idle(0), &energy);
        csv.on_phase(&PhaseEvent { name: "key permutation".into(), cycle: 1, index: 0 });
        let energy1 = CycleEnergy { cycle: 1, components: ComponentEnergy::default() };
        csv.on_cycle(&CycleActivity::idle(1), &energy1);
        let doc = csv.into_csv();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].ends_with(",startup"));
        assert!(lines[2].ends_with(",key permutation"));
        // Header column count matches data column count.
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let s = summary(&tiny_snapshot());
        assert!(s.contains("run summary"));
        assert!(s.contains("cycles"));
        assert!(s.contains("round 1"));
        assert!(s.contains("pJ"));
    }
}
