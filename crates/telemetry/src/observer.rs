//! The run-level observer contract.
//!
//! A [`RunObserver`] sees one simulated run at the granularity the
//! telemetry layer cares about: every cycle (microarchitectural activity
//! *plus* its energy bill), every phase-marker crossing, and the final
//! pipeline statistics. The unit type `()` is the no-op observer —
//! drivers generic over `RunObserver` monomorphize it away entirely, so
//! an unobserved run costs nothing.

use emask_cpu::{CycleActivity, RunResult};
use emask_energy::CycleEnergy;

/// A phase-marker crossing, as seen by the run driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Human-readable phase name (e.g. `"round 3"`), stable across runs.
    pub name: String,
    /// The cycle of the marker store; the named phase owns this cycle and
    /// every following cycle up to (excluding) the next marker.
    pub cycle: u64,
    /// Zero-based marker ordinal within the run.
    pub index: usize,
}

/// Observes one simulated run.
///
/// For every cycle, [`on_phase`] (if a marker was crossed) fires *before*
/// [`on_cycle`], so phase-attributed accumulators that switch buckets in
/// `on_phase` charge the marker cycle to the *new* phase — the same
/// start-inclusive convention as `EncryptionRun::phase_window`.
/// [`on_finish`] fires once, after the final cycle.
///
/// [`on_phase`]: RunObserver::on_phase
/// [`on_cycle`]: RunObserver::on_cycle
/// [`on_finish`]: RunObserver::on_finish
pub trait RunObserver {
    /// One simulated cycle: the activity record and its energy breakdown.
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        let _ = (act, energy);
    }

    /// A phase marker was crossed this cycle (fires before `on_cycle`).
    fn on_phase(&mut self, event: &PhaseEvent) {
        let _ = event;
    }

    /// The run completed; `stats` is the pipeline's aggregate result.
    fn on_finish(&mut self, stats: &RunResult) {
        let _ = stats;
    }
}

/// The no-op observer: a run driven with `&mut ()` compiles to the same
/// code as an unobserved run.
impl RunObserver for () {}

impl<O: RunObserver + ?Sized> RunObserver for &mut O {
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        (**self).on_cycle(act, energy);
    }
    fn on_phase(&mut self, event: &PhaseEvent) {
        (**self).on_phase(event);
    }
    fn on_finish(&mut self, stats: &RunResult) {
        (**self).on_finish(stats);
    }
}

/// A [`LeakageProfiler`](emask_energy::LeakageProfiler) observes runs
/// directly: every cycle's data-dependent energy is attributed to the
/// executing PC, phase markers tag the attribution, and run completion
/// closes the trace — so `encrypt_observed(&mut profiler)` per plaintext
/// builds the cross-trace per-instruction leakage ranking.
impl RunObserver for emask_energy::LeakageProfiler {
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        self.record(act, energy);
    }
    fn on_phase(&mut self, event: &PhaseEvent) {
        self.set_phase(&event.name);
    }
    fn on_finish(&mut self, _stats: &RunResult) {
        self.end_trace();
    }
}

impl<A: RunObserver, B: RunObserver> RunObserver for (A, B) {
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        self.0.on_cycle(act, energy);
        self.1.on_cycle(act, energy);
    }
    fn on_phase(&mut self, event: &PhaseEvent) {
        self.0.on_phase(event);
        self.1.on_phase(event);
    }
    fn on_finish(&mut self, stats: &RunResult) {
        self.0.on_finish(stats);
        self.1.on_finish(stats);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use emask_energy::ComponentEnergy;

    struct Count(u32, u32, u32);

    impl RunObserver for Count {
        fn on_cycle(&mut self, _a: &CycleActivity, _e: &CycleEnergy) {
            self.0 += 1;
        }
        fn on_phase(&mut self, _e: &PhaseEvent) {
            self.1 += 1;
        }
        fn on_finish(&mut self, _s: &RunResult) {
            self.2 += 1;
        }
    }

    fn drive<O: RunObserver>(obs: &mut O) {
        let act = CycleActivity::idle(0);
        let energy = CycleEnergy { cycle: 0, components: ComponentEnergy::default() };
        obs.on_phase(&PhaseEvent { name: "p".into(), cycle: 0, index: 0 });
        obs.on_cycle(&act, &energy);
        obs.on_finish(&RunResult::default());
    }

    #[test]
    fn unit_is_a_valid_observer() {
        drive(&mut ());
    }

    #[test]
    fn pairs_and_borrows_forward() {
        let mut pair = (Count(0, 0, 0), Count(0, 0, 0));
        drive(&mut pair);
        assert_eq!((pair.0 .0, pair.0 .1, pair.0 .2), (1, 1, 1));
        assert_eq!((pair.1 .0, pair.1 .1, pair.1 .2), (1, 1, 1));
        let mut single = Count(0, 0, 0);
        drive(&mut &mut single);
        assert_eq!(single.0, 1);
    }
}
