//! Chrome trace-event JSON export.
//!
//! Builds a `{"traceEvents": [...]}` document loadable in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev): one lane
//! (thread) per pipeline stage carrying `"X"` complete events for each
//! contiguous span of stage activity, plus `"i"` instant events at every
//! phase-marker crossing. One simulated cycle maps to one microsecond of
//! trace time, so cycle numbers read directly off the timeline.
//!
//! The JSON is hand-assembled (the build environment vendors no serde);
//! event names are escaped with [`escape_json`].

use crate::observer::{PhaseEvent, RunObserver};
use emask_cpu::{CycleActivity, RunResult};
use emask_energy::CycleEnergy;
use std::fmt::Write as _;

/// The pipeline-stage lanes, in trace row order.
const STAGES: [&str; 5] = ["IF fetch", "ID decode", "EX execute", "MEM access", "WB retire"];

/// Lane index reserved for stall spans.
const STALL_LANE: usize = STAGES.len();

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    start: u64,
    end: u64, // inclusive last active cycle
}

/// Accumulates a run into Chrome trace-event JSON.
///
/// Implements [`RunObserver`]: feed it cycles and phase events, then call
/// [`ChromeTrace::render`] for the finished document. It can equally be
/// driven by hand via [`ChromeTrace::record_cycle`] and
/// [`ChromeTrace::mark_phase`].
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    open: [Option<OpenSpan>; 6],
    phase_count: usize,
}

impl ChromeTrace {
    /// An empty trace builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lane_active(act: &CycleActivity, lane: usize) -> bool {
        match lane {
            0 => act.fetch_pc.is_some(),
            1 => act.regfile_reads > 0,
            2 => act.ex.is_some(),
            3 => act.mem.is_some(),
            4 => act.retired.is_some(),
            _ => act.stalled,
        }
    }

    fn close(&mut self, lane: usize) {
        if let Some(span) = self.open[lane].take() {
            let name = if lane == STALL_LANE { "stall" } else { "active" };
            self.events.push(format!(
                r#"{{"name":"{name}","ph":"X","ts":{},"dur":{},"pid":1,"tid":{}}}"#,
                span.start,
                span.end - span.start + 1,
                lane + 1,
            ));
        }
    }

    /// Extends or closes each stage lane for one cycle of activity.
    pub fn record_cycle(&mut self, act: &CycleActivity) {
        for lane in 0..=STALL_LANE {
            if Self::lane_active(act, lane) {
                match &mut self.open[lane] {
                    Some(span) if span.end + 1 == act.cycle => span.end = act.cycle,
                    open => {
                        if open.is_some() {
                            self.close(lane);
                        }
                        self.open[lane] = Some(OpenSpan { start: act.cycle, end: act.cycle });
                    }
                }
            } else {
                self.close(lane);
            }
        }
    }

    /// Adds a phase-marker instant event at `cycle`.
    pub fn mark_phase(&mut self, name: &str, cycle: u64) {
        self.phase_count += 1;
        self.events.push(format!(
            r#"{{"name":"{}","ph":"i","ts":{cycle},"pid":1,"tid":0,"s":"p"}}"#,
            escape_json(name),
        ));
    }

    /// Number of phase instants recorded so far.
    pub fn phase_count(&self) -> usize {
        self.phase_count
    }

    /// Closes any open spans and renders the full JSON document.
    pub fn render(mut self) -> String {
        for lane in 0..=STALL_LANE {
            self.close(lane);
        }
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        // Lane-name metadata first: tid 0 = phases, 1..=5 = stages, 6 = stalls.
        let mut names = vec!["phase markers".to_string()];
        names.extend(STAGES.iter().map(|s| s.to_string()));
        names.push("stalls".to_string());
        for (tid, name) in names.iter().enumerate() {
            out.push_str(&format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":"{}"}}}}"#,
                escape_json(name),
            ));
            out.push_str(",\n");
        }
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

impl RunObserver for ChromeTrace {
    fn on_cycle(&mut self, act: &CycleActivity, _energy: &CycleEnergy) {
        self.record_cycle(act);
    }

    fn on_phase(&mut self, event: &PhaseEvent) {
        self.mark_phase(&event.name, event.cycle);
    }

    fn on_finish(&mut self, _stats: &RunResult) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn active_cycle(cycle: u64) -> CycleActivity {
        let mut a = CycleActivity::idle(cycle);
        a.fetch_pc = Some(cycle as u32);
        a
    }

    #[test]
    fn contiguous_activity_merges_into_one_span() {
        let mut t = ChromeTrace::new();
        for c in 0..5 {
            t.record_cycle(&active_cycle(c));
        }
        t.record_cycle(&CycleActivity::idle(5));
        t.record_cycle(&active_cycle(7));
        let json = t.render();
        // One 5-cycle span plus one 1-cycle span on the fetch lane.
        assert!(json.contains(r#""ts":0,"dur":5,"pid":1,"tid":1"#), "{json}");
        assert!(json.contains(r#""ts":7,"dur":1,"pid":1,"tid":1"#), "{json}");
    }

    #[test]
    fn phases_become_instant_events() {
        let mut t = ChromeTrace::new();
        t.mark_phase("round 1", 42);
        assert_eq!(t.phase_count(), 1);
        let json = t.render();
        assert!(json.contains(r#""name":"round 1","ph":"i","ts":42"#), "{json}");
    }

    #[test]
    fn output_is_balanced_json() {
        let mut t = ChromeTrace::new();
        t.record_cycle(&active_cycle(0));
        t.mark_phase("p", 0);
        let json = t.render();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.trim_end().ends_with("]}"));
        assert!(!json.contains(",\n]"), "no trailing comma before array close");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }
}
