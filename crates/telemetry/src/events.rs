//! Structured campaign events and the zero-cost event-sink contract.
//!
//! A long campaign (a million-trace DPA, a resumable fault sweep) is a
//! black box without a live event stream. This module defines the
//! **vocabulary** of that stream — one [`Event`] per thing worth knowing
//! about a running campaign — and the [`EventSink`] trait through which
//! producers (`emask-par` workers, the `emask-bench` campaign and
//! experiment runners) hand events to whoever is listening.
//!
//! ## Replayable vs operational events
//!
//! Every event is one of two kinds, split by [`Event::is_replayable`]:
//!
//! * **Replayable** events are part of the campaign's *result*: the run
//!   header, periodic attack-convergence snapshots, per-trial fault
//!   outcomes, the completion record. They are emitted in a deterministic
//!   order from deterministic data, carry no wall-clock fields, and the
//!   JSONL stream built from them is **byte-identical** for any `--jobs`
//!   count and across a SIGKILL + `--resume` (CI `cmp`s it).
//! * **Operational** events describe the *execution*, not the result:
//!   per-trial completions, shard completions, checkpoint writes,
//!   recovery attempts. Their interleaving depends on scheduling, so they
//!   never enter the replayable stream — they drive the live stderr
//!   progress/ETA line and may be dropped under backpressure
//!   ([`EventBus::try_emit`](crate::stream::EventBus::try_emit)).
//!
//! ## Zero cost when disabled
//!
//! [`EventSink`] follows the same compile-time routing pattern as the
//! CPU's `PipelineHook`: the associated [`EventSink::ACTIVE`] constant is
//! `false` for [`NullSink`], so emission sites guarded by
//! `if S::ACTIVE { … }` are dead-code-eliminated when no sink is
//! installed and the unobserved hot path is untouched.

use crate::chrome::escape_json;
use std::fmt::Write as _;

/// One structured campaign event.
///
/// Field order in [`Event::to_json`] is fixed, fields never carry wall
/// clock time, and numeric formatting uses Rust's shortest-roundtrip
/// float display — together these make the replayable JSONL stream
/// deterministic down to the byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Replayable stream header: the campaign began.
    CampaignStarted {
        /// Experiment name (`"dpa"`, `"tvla"`, `"fault"`, …).
        experiment: String,
        /// Total trial count the campaign will run.
        trials: u64,
        /// Base seed the per-trial seeds derive from.
        seed: u64,
        /// Snapshot cadence in trials (0 = final snapshot only).
        cadence: u64,
    },
    /// Replayable DPA convergence snapshot after `trials` traces.
    DpaConvergence {
        /// Traces folded into the accumulators so far.
        trials: u64,
        /// Current best key-guess (0..64).
        best_guess: u8,
        /// The best guess's differential peak.
        best_peak: f64,
        /// Best-vs-runner-up peak ratio margin.
        margin: f64,
        /// Sample offset (cycle within the window) of the best peak.
        peak_cycle: u64,
        /// Per-guess key rank: `ranks[g]` is the 0-based rank of guess
        /// `g` (0 = current leader) — the key-rank evolution curve.
        ranks: Vec<u8>,
    },
    /// Replayable TVLA convergence snapshot after `trials` trace pairs.
    TvlaConvergence {
        /// Fixed/random trace pairs folded so far.
        trials: u64,
        /// Max |t| over the trace window.
        max_t: f64,
        /// Sample offset of the max |t|.
        at_cycle: u64,
        /// Number of samples with |t| above the 4.5 TVLA threshold.
        leaky_cycles: u64,
    },
    /// Replayable per-trial fault-campaign outcome (emitted in trial
    /// order after the deterministic merge, never from workers).
    FaultOutcome {
        /// Trial index.
        trial: u64,
        /// Outcome class name (`"detected"`, `"recovered"`, …).
        outcome: String,
    },
    /// Replayable stream trailer: the campaign finished.
    CampaignCompleted {
        /// Total trials run.
        trials: u64,
        /// Operational events dropped under backpressure by the sink
        /// during this campaign, as observed at trailer-emission time
        /// (see [`EventSink::dropped`]). Zero whenever the consumer kept
        /// up — the stream stays byte-identical across `--jobs` counts in
        /// that (normal) case, and a nonzero value is precisely the
        /// signal that heartbeats were silently shed.
        dropped_events: u64,
        /// The same drops broken down by event kind (ascending by kind
        /// tag; empty when nothing was shed), so a reader can tell shed
        /// trial heartbeats from shed checkpoint notices. See
        /// [`EventSink::dropped_by_kind`].
        dropped_by_kind: Vec<(String, u64)>,
    },
    /// Replayable job-lifecycle event: the job entered the service queue.
    JobQueued {
        /// Service-assigned job id.
        job: u64,
        /// Experiment name (`"dpa"`, `"tvla"`, `"fault"`, …).
        experiment: String,
        /// Total trial count the job will run.
        trials: u64,
    },
    /// Replayable job-lifecycle event: an execution attempt began.
    JobStarted {
        /// Service-assigned job id.
        job: u64,
        /// 1-based attempt number (1 = first execution).
        attempt: u64,
    },
    /// Replayable job-lifecycle event: the previous attempt died (worker
    /// panic, checkpoint corruption restart, transient IO) and the job
    /// will re-run after a deterministic backoff.
    JobRetried {
        /// Service-assigned job id.
        job: u64,
        /// 1-based attempt number of the attempt about to start.
        attempt: u64,
        /// Deterministic exponential backoff slept before the retry.
        backoff_ms: u64,
    },
    /// Replayable job-lifecycle event: a client cancelled the job.
    JobCancelled {
        /// Service-assigned job id.
        job: u64,
    },
    /// Replayable job-lifecycle event: the job's deadline expired.
    JobDeadlineExceeded {
        /// Service-assigned job id.
        job: u64,
    },
    /// Replayable job-lifecycle event: a restarted server picked the job
    /// back up from its checkpoint.
    JobResumed {
        /// Service-assigned job id.
        job: u64,
    },
    /// Replayable job-lifecycle event: the scheduler parked the running
    /// job at a trial boundary to free its workers for higher-priority
    /// work; the job went back to the front of its class queue.
    JobPreempted {
        /// Service-assigned job id.
        job: u64,
    },
    /// Replayable job-lifecycle event: starvation-avoidance aging
    /// promoted the job to a higher priority class.
    JobPromoted {
        /// Service-assigned job id.
        job: u64,
        /// The class the job left (`"batch"`).
        from: String,
        /// The class the job joined (`"normal"`).
        to: String,
    },
    /// Replayable job-lifecycle event: the job reached a terminal state.
    JobCompleted {
        /// Service-assigned job id.
        job: u64,
        /// Terminal outcome: `"completed"`, `"failed"`, `"cancelled"`,
        /// or `"deadline_exceeded"`.
        outcome: String,
    },
    /// Replayable: a causal span opened (see [`crate::span`]). Emitted
    /// only at deterministic points, so the span stream keeps the
    /// byte-identity contract.
    SpanOpened {
        /// Deterministic span id ([`crate::SpanId`]).
        span: u64,
        /// The parent span's id (0 for top-level spans).
        parent: u64,
        /// Span kind: `"job"`, `"attempt"`, `"queue_wait"`, `"backoff"`,
        /// `"shard"`, `"trial"`, …
        name: String,
        /// Sibling index (job id, attempt number, shard index, …).
        index: u64,
    },
    /// Replayable: a causal span closed. Consumers pair it with the
    /// nearest prior unmatched open of the same id.
    SpanClosed {
        /// Deterministic span id.
        span: u64,
        /// Logical extent of the span — trials in a shard, planned
        /// backoff milliseconds; never wall clock.
        items: u64,
    },
    /// Operational: a periodic snapshot of the service gauges, pushed
    /// into live watch streams so a dashboard needs no polling. Values
    /// are whole-service (not per-job) and scheduling-dependent, so the
    /// event never enters the replayable stream.
    ServiceMetrics {
        /// Jobs waiting in the queue.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
        /// Jobs finished successfully.
        completed: u64,
        /// Jobs failed permanently.
        failed: u64,
        /// Jobs cancelled by a client.
        cancelled: u64,
        /// Jobs that ran out of wall-clock budget.
        deadline_exceeded: u64,
    },
    /// Operational: a periodic snapshot of the multi-executor scheduler —
    /// per-class queue depths plus pool occupancy. Scheduling-dependent
    /// by nature, so it never enters the replayable stream.
    SchedulerHeartbeat {
        /// High-priority jobs waiting.
        high: u64,
        /// Normal-priority jobs waiting.
        normal: u64,
        /// Batch jobs waiting.
        batch: u64,
        /// Jobs currently executing.
        running: u64,
        /// Configured executor count.
        executors: u64,
        /// Unleased worker threads in the shared pool (0 when the
        /// minimum-grant rule has it oversubscribed).
        pool_available: u64,
    },
    /// Operational: one trial finished on some worker.
    TrialCompleted {
        /// Trial index.
        trial: u64,
    },
    /// Operational: a worker finished a whole shard.
    ShardCompleted {
        /// Shard index.
        shard: u64,
        /// Number of trials in the shard.
        len: u64,
    },
    /// Operational: a campaign checkpoint was persisted.
    CheckpointWritten {
        /// Shards recorded in the checkpoint so far.
        shards_done: u64,
    },
    /// Operational: a trial rolled back and re-executed.
    RecoveryAttempted {
        /// Trial index.
        trial: u64,
    },
}

impl Event {
    /// Whether this event belongs to the deterministic replayable stream
    /// (see the module docs for the split).
    #[must_use]
    pub fn is_replayable(&self) -> bool {
        matches!(
            self,
            Event::CampaignStarted { .. }
                | Event::DpaConvergence { .. }
                | Event::TvlaConvergence { .. }
                | Event::FaultOutcome { .. }
                | Event::CampaignCompleted { .. }
                | Event::JobQueued { .. }
                | Event::JobStarted { .. }
                | Event::JobRetried { .. }
                | Event::JobCancelled { .. }
                | Event::JobDeadlineExceeded { .. }
                | Event::JobResumed { .. }
                | Event::JobPreempted { .. }
                | Event::JobPromoted { .. }
                | Event::JobCompleted { .. }
                | Event::SpanOpened { .. }
                | Event::SpanClosed { .. }
        )
    }

    /// Every event tag, ascending — the authority consumers (e.g.
    /// `repro events validate`) check unknown streams against.
    pub const KINDS: [&'static str; 22] = [
        "campaign_completed",
        "campaign_started",
        "checkpoint_written",
        "dpa_convergence",
        "fault_outcome",
        "job_cancelled",
        "job_completed",
        "job_deadline_exceeded",
        "job_preempted",
        "job_promoted",
        "job_queued",
        "job_resumed",
        "job_retried",
        "job_started",
        "recovery_attempted",
        "scheduler_heartbeat",
        "service_metrics",
        "shard_completed",
        "span_closed",
        "span_opened",
        "trial_completed",
        "tvla_convergence",
    ];

    /// The event's type tag, as it appears in the JSON `"event"` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CampaignStarted { .. } => "campaign_started",
            Event::DpaConvergence { .. } => "dpa_convergence",
            Event::TvlaConvergence { .. } => "tvla_convergence",
            Event::FaultOutcome { .. } => "fault_outcome",
            Event::CampaignCompleted { .. } => "campaign_completed",
            Event::JobQueued { .. } => "job_queued",
            Event::JobStarted { .. } => "job_started",
            Event::JobRetried { .. } => "job_retried",
            Event::JobCancelled { .. } => "job_cancelled",
            Event::JobDeadlineExceeded { .. } => "job_deadline_exceeded",
            Event::JobResumed { .. } => "job_resumed",
            Event::JobPreempted { .. } => "job_preempted",
            Event::JobPromoted { .. } => "job_promoted",
            Event::JobCompleted { .. } => "job_completed",
            Event::SpanOpened { .. } => "span_opened",
            Event::SpanClosed { .. } => "span_closed",
            Event::ServiceMetrics { .. } => "service_metrics",
            Event::SchedulerHeartbeat { .. } => "scheduler_heartbeat",
            Event::TrialCompleted { .. } => "trial_completed",
            Event::ShardCompleted { .. } => "shard_completed",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::RecoveryAttempted { .. } => "recovery_attempted",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    ///
    /// Hand-assembled (the build vendors no serde) with a fixed field
    /// order; strings pass through [`escape_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, r#"{{"event":"{}""#, self.kind());
        match self {
            Event::CampaignStarted { experiment, trials, seed, cadence } => {
                let _ = write!(
                    s,
                    r#","experiment":"{}","trials":{trials},"seed":{seed},"cadence":{cadence}"#,
                    escape_json(experiment)
                );
            }
            Event::DpaConvergence { trials, best_guess, best_peak, margin, peak_cycle, ranks } => {
                let _ = write!(
                    s,
                    r#","trials":{trials},"best_guess":{best_guess},"best_peak":{best_peak},"margin":{margin},"peak_cycle":{peak_cycle},"ranks":["#
                );
                for (i, r) in ranks.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{r}");
                }
                s.push(']');
            }
            Event::TvlaConvergence { trials, max_t, at_cycle, leaky_cycles } => {
                let _ = write!(
                    s,
                    r#","trials":{trials},"max_t":{max_t},"at_cycle":{at_cycle},"leaky_cycles":{leaky_cycles}"#
                );
            }
            Event::FaultOutcome { trial, outcome } => {
                let _ = write!(s, r#","trial":{trial},"outcome":"{}""#, escape_json(outcome));
            }
            Event::CampaignCompleted { trials, dropped_events, dropped_by_kind } => {
                let _ = write!(
                    s,
                    r#","trials":{trials},"dropped_events":{dropped_events},"dropped_by_kind":{{"#
                );
                for (i, (kind, n)) in dropped_by_kind.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, r#""{}":{n}"#, escape_json(kind));
                }
                s.push('}');
            }
            Event::JobQueued { job, experiment, trials } => {
                let _ = write!(
                    s,
                    r#","job":{job},"experiment":"{}","trials":{trials}"#,
                    escape_json(experiment)
                );
            }
            Event::JobStarted { job, attempt } => {
                let _ = write!(s, r#","job":{job},"attempt":{attempt}"#);
            }
            Event::JobRetried { job, attempt, backoff_ms } => {
                let _ = write!(s, r#","job":{job},"attempt":{attempt},"backoff_ms":{backoff_ms}"#);
            }
            Event::JobCancelled { job }
            | Event::JobDeadlineExceeded { job }
            | Event::JobResumed { job }
            | Event::JobPreempted { job } => {
                let _ = write!(s, r#","job":{job}"#);
            }
            Event::JobPromoted { job, from, to } => {
                let _ = write!(
                    s,
                    r#","job":{job},"from":"{}","to":"{}""#,
                    escape_json(from),
                    escape_json(to)
                );
            }
            Event::JobCompleted { job, outcome } => {
                let _ = write!(s, r#","job":{job},"outcome":"{}""#, escape_json(outcome));
            }
            Event::SpanOpened { span, parent, name, index } => {
                let _ = write!(
                    s,
                    r#","span":{span},"parent":{parent},"name":"{}","index":{index}"#,
                    escape_json(name)
                );
            }
            Event::SpanClosed { span, items } => {
                let _ = write!(s, r#","span":{span},"items":{items}"#);
            }
            Event::ServiceMetrics {
                queued,
                running,
                completed,
                failed,
                cancelled,
                deadline_exceeded,
            } => {
                let _ = write!(
                    s,
                    r#","queued":{queued},"running":{running},"completed":{completed},"failed":{failed},"cancelled":{cancelled},"deadline_exceeded":{deadline_exceeded}"#
                );
            }
            Event::SchedulerHeartbeat {
                high,
                normal,
                batch,
                running,
                executors,
                pool_available,
            } => {
                let _ = write!(
                    s,
                    r#","high":{high},"normal":{normal},"batch":{batch},"running":{running},"executors":{executors},"pool_available":{pool_available}"#
                );
            }
            Event::TrialCompleted { trial } => {
                let _ = write!(s, r#","trial":{trial}"#);
            }
            Event::ShardCompleted { shard, len } => {
                let _ = write!(s, r#","shard":{shard},"len":{len}"#);
            }
            Event::CheckpointWritten { shards_done } => {
                let _ = write!(s, r#","shards_done":{shards_done}"#);
            }
            Event::RecoveryAttempted { trial } => {
                let _ = write!(s, r#","trial":{trial}"#);
            }
        }
        s.push('}');
        s
    }
}

/// Where campaign events go.
///
/// Producers are generic over `S: EventSink` and guard emission sites
/// with `if S::ACTIVE`, so the [`NullSink`] path monomorphizes to the
/// event-free code — the same zero-cost routing as `PipelineHook`'s
/// `IS_NULL`. Sinks take `&self` (workers share one sink across
/// threads), so an implementation must be `Sync`.
pub trait EventSink: Sync {
    /// `false` only for sinks that discard everything; lets emission
    /// sites compile away entirely.
    const ACTIVE: bool = true;

    /// Accepts one event. Implementations decide the delivery policy
    /// (block, drop, buffer); see
    /// [`EventBus`](crate::stream::EventBus) for the bounded
    /// backpressure-aware implementation.
    fn emit(&self, event: Event);

    /// Operational events this sink has shed under backpressure so far.
    /// Lossless sinks (the default) report 0; campaign drivers fold the
    /// value into their `campaign_completed` trailer so silent drops are
    /// visible in the stream itself.
    fn dropped(&self) -> u64 {
        0
    }

    /// The shed events broken down by [`Event::kind`], ascending by kind
    /// tag. Lossless sinks (the default) report nothing; lossy sinks keep
    /// per-kind counters so a reader can tell which signal was lost —
    /// shed trial heartbeats are routine, shed checkpoint notices are
    /// not. The entries sum to [`EventSink::dropped`].
    fn dropped_by_kind(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// The discarding sink: `ACTIVE = false`, so guarded emission sites
/// vanish at compile time and the unobserved campaign path is untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    const ACTIVE: bool = false;

    fn emit(&self, _event: Event) {}
}

impl<S: EventSink> EventSink for &S {
    const ACTIVE: bool = S::ACTIVE;

    fn emit(&self, event: Event) {
        (**self).emit(event);
    }

    fn dropped(&self) -> u64 {
        (**self).dropped()
    }

    fn dropped_by_kind(&self) -> Vec<(String, u64)> {
        (**self).dropped_by_kind()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn replayable_split_matches_the_stream_contract() {
        let replayable = [
            Event::CampaignStarted { experiment: "dpa".into(), trials: 8, seed: 1, cadence: 2 },
            Event::DpaConvergence {
                trials: 4,
                best_guess: 7,
                best_peak: 1.5,
                margin: 2.0,
                peak_cycle: 3,
                ranks: vec![7, 1],
            },
            Event::TvlaConvergence { trials: 4, max_t: 9.5, at_cycle: 2, leaky_cycles: 6 },
            Event::FaultOutcome { trial: 3, outcome: "detected".into() },
            Event::CampaignCompleted { trials: 8, dropped_events: 0, dropped_by_kind: vec![] },
            Event::JobQueued { job: 1, experiment: "fault".into(), trials: 8 },
            Event::JobStarted { job: 1, attempt: 1 },
            Event::JobRetried { job: 1, attempt: 2, backoff_ms: 250 },
            Event::JobCancelled { job: 1 },
            Event::JobDeadlineExceeded { job: 1 },
            Event::JobResumed { job: 1 },
            Event::JobPreempted { job: 1 },
            Event::JobPromoted { job: 1, from: "batch".into(), to: "normal".into() },
            Event::JobCompleted { job: 1, outcome: "completed".into() },
            Event::SpanOpened { span: 7, parent: 0, name: "job".into(), index: 1 },
            Event::SpanClosed { span: 7, items: 8 },
        ];
        let operational = [
            Event::TrialCompleted { trial: 0 },
            Event::ShardCompleted { shard: 1, len: 16 },
            Event::CheckpointWritten { shards_done: 2 },
            Event::RecoveryAttempted { trial: 5 },
            Event::ServiceMetrics {
                queued: 1,
                running: 1,
                completed: 0,
                failed: 0,
                cancelled: 0,
                deadline_exceeded: 0,
            },
            Event::SchedulerHeartbeat {
                high: 0,
                normal: 1,
                batch: 2,
                running: 1,
                executors: 3,
                pool_available: 4,
            },
        ];
        assert!(replayable.iter().all(Event::is_replayable));
        assert!(operational.iter().all(|e| !e.is_replayable()));
    }

    #[test]
    fn json_has_fixed_field_order_and_escapes_strings() {
        let e = Event::CampaignStarted {
            experiment: "dpa \"x\"".into(),
            trials: 512,
            seed: 42,
            cadence: 64,
        };
        assert_eq!(
            e.to_json(),
            r#"{"event":"campaign_started","experiment":"dpa \"x\"","trials":512,"seed":42,"cadence":64}"#
        );
        let e = Event::DpaConvergence {
            trials: 128,
            best_guess: 27,
            best_peak: 0.5,
            margin: 1.25,
            peak_cycle: 91,
            ranks: vec![27, 3, 60],
        };
        assert_eq!(
            e.to_json(),
            r#"{"event":"dpa_convergence","trials":128,"best_guess":27,"best_peak":0.5,"margin":1.25,"peak_cycle":91,"ranks":[27,3,60]}"#
        );
        let e = Event::SpanOpened { span: 11, parent: 3, name: "shard".into(), index: 4 };
        assert_eq!(
            e.to_json(),
            r#"{"event":"span_opened","span":11,"parent":3,"name":"shard","index":4}"#
        );
        let e = Event::SpanClosed { span: 11, items: 12 };
        assert_eq!(e.to_json(), r#"{"event":"span_closed","span":11,"items":12}"#);
        let e = Event::CampaignCompleted {
            trials: 4,
            dropped_events: 3,
            dropped_by_kind: vec![("shard_completed".into(), 1), ("trial_completed".into(), 2)],
        };
        assert_eq!(
            e.to_json(),
            r#"{"event":"campaign_completed","trials":4,"dropped_events":3,"dropped_by_kind":{"shard_completed":1,"trial_completed":2}}"#
        );
    }

    #[test]
    fn json_is_balanced_for_every_variant() {
        let all = [
            Event::CampaignStarted { experiment: "t".into(), trials: 1, seed: 0, cadence: 0 },
            Event::DpaConvergence {
                trials: 1,
                best_guess: 0,
                best_peak: 0.0,
                margin: 0.0,
                peak_cycle: 0,
                ranks: vec![0],
            },
            Event::TvlaConvergence { trials: 1, max_t: 0.0, at_cycle: 0, leaky_cycles: 0 },
            Event::FaultOutcome { trial: 0, outcome: "no-effect".into() },
            Event::CampaignCompleted {
                trials: 1,
                dropped_events: 1,
                dropped_by_kind: vec![("trial_completed".into(), 1)],
            },
            Event::JobQueued { job: 0, experiment: "dpa".into(), trials: 1 },
            Event::JobStarted { job: 0, attempt: 1 },
            Event::JobRetried { job: 0, attempt: 2, backoff_ms: 0 },
            Event::JobCancelled { job: 0 },
            Event::JobDeadlineExceeded { job: 0 },
            Event::JobResumed { job: 0 },
            Event::JobPreempted { job: 0 },
            Event::JobPromoted { job: 0, from: "batch".into(), to: "normal".into() },
            Event::JobCompleted { job: 0, outcome: "failed".into() },
            Event::SpanOpened { span: 1, parent: 0, name: "job".into(), index: 1 },
            Event::SpanClosed { span: 1, items: 0 },
            Event::ServiceMetrics {
                queued: 0,
                running: 0,
                completed: 0,
                failed: 0,
                cancelled: 0,
                deadline_exceeded: 0,
            },
            Event::SchedulerHeartbeat {
                high: 0,
                normal: 0,
                batch: 0,
                running: 0,
                executors: 1,
                pool_available: 1,
            },
            Event::TrialCompleted { trial: 0 },
            Event::ShardCompleted { shard: 0, len: 1 },
            Event::CheckpointWritten { shards_done: 1 },
            Event::RecoveryAttempted { trial: 0 },
        ];
        for e in &all {
            let json = e.to_json();
            assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
            assert!(json.starts_with(&format!(r#"{{"event":"{}""#, e.kind())), "{json}");
        }
        // The KINDS table is the complete, sorted vocabulary.
        let mut kinds: Vec<&str> = all.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds, Event::KINDS, "KINDS must list every variant, ascending");
    }

    #[test]
    fn null_sink_is_inactive_and_references_forward() {
        const { assert!(!NullSink::ACTIVE) };
        const { assert!(!<&NullSink as EventSink>::ACTIVE) };
        struct Collect(std::sync::Mutex<Vec<Event>>);
        impl EventSink for Collect {
            fn emit(&self, event: Event) {
                self.0.lock().expect("poisoned").push(event);
            }
        }
        const { assert!(<&Collect as EventSink>::ACTIVE) };
        let c = Collect(std::sync::Mutex::new(Vec::new()));
        let via_ref: &Collect = &c;
        via_ref.emit(Event::TrialCompleted { trial: 9 });
        assert_eq!(c.0.lock().expect("poisoned").len(), 1);
    }
}
