//! Causal spans: deterministic hierarchical ids over the event stream.
//!
//! A service job is a tree of work — the job arcs over queue waits,
//! execution attempts, and retry backoffs; each attempt arcs over the
//! campaign's shards; each shard over its trials. This module gives that
//! tree **identity**: a [`Span`] couples a deterministic 64-bit id
//! ([`SpanId`]) to its parent's id, and renders as a pair of replayable
//! events ([`Event::SpanOpened`] / [`Event::SpanClosed`]) in the same
//! JSONL stream as the rest of the campaign history. An offline consumer
//! (`repro events trace`) rebuilds the tree from the parent links and the
//! open/close bracketing and renders it as one nested Chrome trace.
//!
//! ## Determinism
//!
//! Span ids are a pure function of the path from the root —
//! `job 3 → attempt 1 → shard 7` always hashes to the same id, on any
//! worker count, before or after a resume. Span events carry **no wall
//! clock**: the `items` payload on close is a logical extent (trials in a
//! shard, planned backoff milliseconds), and producers emit open/close
//! pairs only at deterministic points (the supervisor's sequential
//! lifecycle transitions; the post-merge shard ladder, never live from
//! workers). That keeps the PR-5 contract intact: the replayable stream
//! — now including spans — stays byte-identical at any `--jobs` count
//! and across a SIGTERM + resume. Wall-clock timing lives elsewhere, in
//! the supervisor's latency histograms (the `stats` verb) and the lossy
//! operational plane.
//!
//! ## Zero cost when disabled
//!
//! Emission goes through [`Span::open_on`] / [`Span::close_on`], which
//! are guarded by [`EventSink::ACTIVE`] — with
//! [`NullSink`](crate::NullSink) installed, span construction and
//! emission compile away exactly like every other `if S::ACTIVE` site,
//! leaving the unobserved hot path untouched.

use crate::events::{Event, EventSink};

/// A deterministic 64-bit span identity.
///
/// Ids are derived by hashing the parent id with the child's name and
/// index ([`SpanId::child`]), so the id of `job 3 / attempt 1 / shard 7`
/// is the same in every run that reaches that node. The root id is 0 and
/// is never emitted — it only anchors derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

/// SplitMix64 finalizer: cheap, well-mixed, and stable — exactly what a
/// deterministic id needs. (Also used by `emask-par`'s seed derivation.)
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SpanId {
    /// The derivation anchor; not a real span.
    pub const ROOT: SpanId = SpanId(0);

    /// Derives the id of the `(name, index)` child — a pure function, so
    /// every run derives the same tree.
    ///
    /// Ids are confined to 63 bits so the decimal rendering fits a
    /// signed 64-bit integer — every JSON parser that stores integers as
    /// `i64` (including the service's own) round-trips them losslessly.
    #[must_use]
    pub fn child(self, name: &str, index: u64) -> SpanId {
        let mut h = mix(self.0 ^ 0x5EA5_0000_0000_0001);
        for &b in name.as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        SpanId(mix(h ^ index) & 0x7FFF_FFFF_FFFF_FFFF)
    }

    /// The raw id, as it appears in the `span`/`parent` JSON fields.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One node of the causal tree, ready to emit.
///
/// A `Span` is plain data — opening and closing are just events on a
/// sink, so a span can be closed by code that re-derives it (the
/// supervisor closes the queue-wait span it opened in an earlier call)
/// and the same id may open again later (a second attempt after a park);
/// consumers pair each close with the nearest prior unmatched open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The parent's id ([`SpanId::ROOT`] for top-level spans).
    pub parent: SpanId,
    /// Span kind: `"job"`, `"attempt"`, `"queue_wait"`, `"backoff"`,
    /// `"shard"`, `"trial"`, …
    pub name: &'static str,
    /// Which sibling this is (job id, attempt number, shard index, …).
    pub index: u64,
}

impl Span {
    /// A top-level span (parent = [`SpanId::ROOT`]).
    #[must_use]
    pub fn root(name: &'static str, index: u64) -> Span {
        Span::below(SpanId::ROOT, name, index)
    }

    /// A child of this span.
    #[must_use]
    pub fn child(&self, name: &'static str, index: u64) -> Span {
        Span::below(self.id, name, index)
    }

    /// A child of a bare parent id — how a runner hangs its shard spans
    /// under the attempt id the supervisor handed it.
    #[must_use]
    pub fn below(parent: SpanId, name: &'static str, index: u64) -> Span {
        Span { id: parent.child(name, index), parent, name, index }
    }

    /// The replayable open event for this span.
    #[must_use]
    pub fn opened(&self) -> Event {
        Event::SpanOpened {
            span: self.id.raw(),
            parent: self.parent.raw(),
            name: self.name.to_string(),
            index: self.index,
        }
    }

    /// The replayable close event; `items` is the span's logical extent
    /// (trials in a shard, planned backoff ms — never wall clock).
    #[must_use]
    pub fn closed(&self, items: u64) -> Event {
        Event::SpanClosed { span: self.id.raw(), items }
    }

    /// Emits the open event — compiled away when `S::ACTIVE` is false.
    pub fn open_on<S: EventSink>(&self, sink: &S) {
        if S::ACTIVE {
            sink.emit(self.opened());
        }
    }

    /// Emits the close event — compiled away when `S::ACTIVE` is false.
    pub fn close_on<S: EventSink>(&self, sink: &S, items: u64) {
        if S::ACTIVE {
            sink.emit(self.closed(items));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::events::NullSink;
    use std::sync::Mutex;

    #[test]
    fn ids_are_deterministic_functions_of_the_path() {
        let a = Span::root("job", 3).child("attempt", 1).child("shard", 7);
        let b = Span::root("job", 3).child("attempt", 1).child("shard", 7);
        assert_eq!(a.id, b.id);
        assert_eq!(a.parent, b.parent);
        // Sibling and cross-level collisions would corrupt the tree.
        let sibling = Span::root("job", 3).child("attempt", 1).child("shard", 8);
        let other_level = Span::root("job", 3).child("attempt", 2).child("shard", 7);
        let other_name = Span::root("job", 3).child("attempt", 1).child("trial", 7);
        for s in [sibling, other_level, other_name] {
            assert_ne!(a.id, s.id);
        }
        assert_ne!(a.id, SpanId::ROOT);
        // The i64-safety bound: no id may use the top bit.
        for s in [a, sibling, other_level, other_name] {
            assert!(s.id.raw() <= i64::MAX as u64, "{}", s.id.raw());
        }
    }

    #[test]
    fn trial_level_ids_hang_off_shards() {
        let shard = Span::root("job", 1).child("attempt", 1).child("shard", 0);
        let t0 = shard.child("trial", 0);
        let t1 = shard.child("trial", 1);
        assert_eq!(t0.parent, shard.id);
        assert_ne!(t0.id, t1.id);
    }

    #[test]
    fn open_close_events_are_replayable_and_carry_the_link() {
        let span = Span::below(SpanId::ROOT.child("job", 9), "attempt", 2);
        let open = span.opened();
        let close = span.closed(64);
        assert!(open.is_replayable());
        assert!(close.is_replayable());
        assert_eq!(open.kind(), "span_opened");
        assert_eq!(close.kind(), "span_closed");
        let json = open.to_json();
        assert!(json.contains(&format!("\"span\":{}", span.id.raw())), "{json}");
        assert!(json.contains(&format!("\"parent\":{}", span.parent.raw())), "{json}");
        assert!(json.contains("\"name\":\"attempt\",\"index\":2"), "{json}");
        assert!(close.to_json().ends_with(",\"items\":64}"), "{}", close.to_json());
    }

    #[test]
    fn emission_is_guarded_by_the_sink_activity_const() {
        // The NullSink path must stay compile-time dead.
        const { assert!(!NullSink::ACTIVE) };
        Span::root("job", 1).open_on(&NullSink); // compiles to nothing

        struct Collect(Mutex<Vec<Event>>);
        impl EventSink for Collect {
            fn emit(&self, event: Event) {
                self.0.lock().expect("collect").push(event);
            }
        }
        let sink = Collect(Mutex::new(Vec::new()));
        let span = Span::root("job", 1);
        span.open_on(&sink);
        span.close_on(&sink, 5);
        let events = sink.0.lock().expect("collect");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], span.opened());
        assert_eq!(events[1], span.closed(5));
    }
}
