//! The metrics registry: counters, histograms, and phase-attributed
//! energy accounting over one simulated run.

use crate::observer::{PhaseEvent, RunObserver};
use emask_cpu::{CycleActivity, RunResult};
use emask_energy::{ComponentEnergy, CycleEnergy};
use emask_isa::OpClass;
use std::fmt;

/// Why two telemetry accumulators could not be combined.
///
/// Parallel drivers observe each worker's encryptions into a private
/// [`MetricsRegistry`] and fold the partials together at join; a shape
/// disagreement means the workers measured incomparable things and the
/// merged numbers would be garbage, so it surfaces as a typed error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeError {
    /// The histograms have different bucket widths or bucket counts.
    HistogramShape {
        /// This accumulator's (width, bucket-count).
        expected: (f64, usize),
        /// The other accumulator's (width, bucket-count).
        got: (f64, usize),
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::HistogramShape { expected, got } => write!(
                f,
                "histogram shapes differ: {} buckets of {} pJ vs {} buckets of {} pJ",
                expected.1, expected.0, got.1, got.0
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// All instruction classes, in a fixed reporting order.
pub const OP_CLASSES: [OpClass; 8] = [
    OpClass::AluReg,
    OpClass::AluImm,
    OpClass::ShiftImm,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
    OpClass::Jump,
    OpClass::Halt,
];

/// A short stable name for an instruction class (used in reports).
pub fn op_class_name(class: OpClass) -> &'static str {
    match class {
        OpClass::AluReg => "alu_reg",
        OpClass::AluImm => "alu_imm",
        OpClass::ShiftImm => "shift_imm",
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::Branch => "branch",
        OpClass::Jump => "jump",
        OpClass::Halt => "halt",
    }
}

fn op_class_index(class: OpClass) -> usize {
    OP_CLASSES.iter().position(|&c| c == class).expect("class in table")
}

/// A fixed-width linear histogram with an overflow bucket.
///
/// Buckets are half-open `[k·width, (k+1)·width)`: a sample exactly on a
/// boundary lands in the *upper* bucket. Negative samples clamp into
/// bucket 0; samples past the last bucket — and non-finite samples,
/// which carry no usable magnitude — land in the overflow bucket.
/// Non-finite samples are kept out of `sum`/`min`/`max`, so one poisoned
/// cycle cannot corrupt the whole distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    n: u64,
    /// Finite samples only — the denominator for [`Histogram::mean`].
    finite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram of `buckets` bins, each `width` wide, starting at 0.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive or `buckets` is 0.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            n: 0,
            finite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample (negative samples land in bucket 0, boundary
    /// samples in the upper bucket, non-finite samples in overflow; all
    /// counters saturate instead of wrapping).
    pub fn record(&mut self, value: f64) {
        self.n = self.n.saturating_add(1);
        if !value.is_finite() {
            self.overflow = self.overflow.saturating_add(1);
            return;
        }
        // The float cast saturates, so a huge value/width lands in
        // overflow rather than wrapping into a live bucket.
        let idx = (value / self.width).floor().max(0.0) as usize;
        if idx < self.counts.len() {
            self.counts[idx] = self.counts[idx].saturating_add(1);
        } else {
            self.overflow = self.overflow.saturating_add(1);
        }
        self.finite = self.finite.saturating_add(1);
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Per-bucket counts (overflow excluded).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> f64 {
        self.width
    }

    /// Number of recorded samples (finite or not).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of finite recorded samples — the population behind
    /// [`Histogram::mean`], [`Histogram::min`] and [`Histogram::max`].
    pub fn finite_count(&self) -> u64 {
        self.finite
    }

    /// Mean of the finite recorded samples (0 when none).
    pub fn mean(&self) -> f64 {
        if self.finite == 0 {
            0.0
        } else {
            self.sum / self.finite as f64
        }
    }

    /// Smallest finite recorded sample (0 when none).
    pub fn min(&self) -> f64 {
        if self.finite == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest finite recorded sample (0 when none).
    pub fn max(&self) -> f64 {
        if self.finite == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the bucket counts.
    ///
    /// Semantics, fixed so service dashboards agree across versions:
    ///
    /// * The population is **every** recorded sample (`count()`), ordered
    ///   by bucket; overflow samples (too large or non-finite) sort last,
    ///   "past the final bucket edge".
    /// * Within the bucket containing the target rank `q·count()`, the
    ///   value is **linearly interpolated** across the bucket's width —
    ///   rank fraction `f` of a bucket `[k·w, (k+1)·w)` maps to
    ///   `(k + f)·w`.
    /// * Results clamp to the observed finite `[min(), max()]`, so
    ///   `quantile(0.0) == min()` and `quantile(1.0) == max()`; a rank
    ///   landing in overflow reports `max()` (the histogram knows no
    ///   better upper bound).
    /// * An empty histogram reports 0, like the other accessors; `q`
    ///   outside `[0, 1]` clamps.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.n as f64;
        // Rank 0 is the smallest sample itself — interpolating inside
        // bucket 0 would misreport negative samples (they clamp into
        // bucket 0 but sit below its nominal lower edge).
        if target <= 0.0 {
            return self.min();
        }
        let mut below = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below + c;
            if target <= through as f64 {
                let frac = (target - below as f64) / c as f64;
                let v = (k as f64 + frac) * self.width;
                return v.clamp(self.min(), self.max());
            }
            below = through;
        }
        self.max()
    }

    /// Absorbs another histogram's samples, bucket by bucket.
    ///
    /// # Errors
    ///
    /// [`MergeError::HistogramShape`] when the bucket widths or counts
    /// differ; the histogram is left unchanged.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.width != other.width || self.counts.len() != other.counts.len() {
            return Err(MergeError::HistogramShape {
                expected: (self.width, self.counts.len()),
                got: (other.width, other.counts.len()),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.n = self.n.saturating_add(other.n);
        self.finite = self.finite.saturating_add(other.finite);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

/// Energy and cycle counts attributed to one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// The phase name from the marker event (e.g. `"round 3"`), or
    /// [`MetricsRegistry::STARTUP_PHASE`] for cycles before the first
    /// marker.
    pub name: String,
    /// First cycle owned by the phase.
    pub start_cycle: u64,
    /// Number of cycles attributed.
    pub cycles: u64,
    /// Per-component energy attributed (picojoules).
    pub energy: ComponentEnergy,
}

/// Retired-instruction counts for one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MixEntry {
    /// Retired instructions of this class without the secure bit.
    pub normal: u64,
    /// Retired instructions of this class carrying the secure bit.
    pub secure: u64,
}

impl MixEntry {
    /// Total retired instructions of this class (saturating).
    pub fn total(&self) -> u64 {
        self.normal.saturating_add(self.secure)
    }
}

/// A point-in-time copy of everything the registry counted.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Cycles observed.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Retired instructions with the secure bit.
    pub retired_secure: u64,
    /// Load-use interlock stall cycles.
    pub stall_cycles: u64,
    /// Wrong-path instructions squashed.
    pub flushed: u64,
    /// Cycles in which at least one stage carried a secure value.
    pub secure_cycles: u64,
    /// Retired-instruction mix, indexed like [`OP_CLASSES`].
    pub mix: [MixEntry; 8],
    /// Total per-component energy (picojoules).
    pub energy: ComponentEnergy,
    /// Per-phase attribution, in marker order (first entry is the
    /// pre-marker startup region when any cycles precede the first marker).
    pub phases: Vec<PhaseMetrics>,
    /// Distribution of per-cycle total energy (picojoules).
    pub cycle_energy: Histogram,
    /// The pipeline's own aggregate result, once the run finished.
    pub run: Option<RunResult>,
}

impl MetricsSnapshot {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.energy.total()
    }

    /// The metrics of a named phase, if it was crossed.
    pub fn phase(&self, name: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Accumulates counters, the instruction mix, a per-cycle energy
/// histogram, and phase-attributed component energy from a run.
///
/// Implements [`RunObserver`], so it plugs directly into
/// `MaskedDes::encrypt_observed` (or any driver generic over the trait);
/// [`MetricsRegistry::snapshot`] then yields a typed [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    cycles: u64,
    retired: u64,
    retired_secure: u64,
    stall_cycles: u64,
    flushed: u64,
    secure_cycles: u64,
    mix: [MixEntry; 8],
    energy: ComponentEnergy,
    phases: Vec<PhaseMetrics>,
    cycle_energy: Histogram,
    run: Option<RunResult>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// The synthetic phase name for cycles before the first marker.
    pub const STARTUP_PHASE: &'static str = "startup";

    /// An empty registry. The default histogram spans 0–500 pJ in 25 pJ
    /// bins, bracketing the calibrated model's per-cycle range.
    pub fn new() -> Self {
        MetricsRegistry {
            cycles: 0,
            retired: 0,
            retired_secure: 0,
            stall_cycles: 0,
            flushed: 0,
            secure_cycles: 0,
            mix: [MixEntry::default(); 8],
            energy: ComponentEnergy::default(),
            phases: Vec::new(),
            cycle_energy: Histogram::new(25.0, 20),
            run: None,
        }
    }

    /// Copies out everything counted so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles: self.cycles,
            retired: self.retired,
            retired_secure: self.retired_secure,
            stall_cycles: self.stall_cycles,
            flushed: self.flushed,
            secure_cycles: self.secure_cycles,
            mix: self.mix,
            energy: self.energy,
            phases: self.phases.clone(),
            cycle_energy: self.cycle_energy.clone(),
            run: self.run,
        }
    }

    /// Absorbs another registry's counts — the join step of a parallel
    /// campaign where each worker observed its own encryptions.
    ///
    /// Counters, the instruction mix, energy totals, and the cycle-energy
    /// histogram add; phases merge **by name** (cycles and energy add, the
    /// start cycle takes the minimum), with phases first seen in `other`
    /// appended in their order of appearance; the run result keeps this
    /// registry's if present, else adopts the other's — per-run pipeline
    /// stats have no meaningful sum and the simulator's runs are identical
    /// in shape anyway.
    ///
    /// # Errors
    ///
    /// [`MergeError::HistogramShape`] when the cycle-energy histograms
    /// disagree in shape; counters are untouched on error.
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<(), MergeError> {
        // Validate before mutating anything.
        if self.cycle_energy.bucket_width() != other.cycle_energy.bucket_width()
            || self.cycle_energy.counts().len() != other.cycle_energy.counts().len()
        {
            return Err(MergeError::HistogramShape {
                expected: (self.cycle_energy.bucket_width(), self.cycle_energy.counts().len()),
                got: (other.cycle_energy.bucket_width(), other.cycle_energy.counts().len()),
            });
        }
        self.cycle_energy.merge(&other.cycle_energy).expect("shape checked above");
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.retired = self.retired.saturating_add(other.retired);
        self.retired_secure = self.retired_secure.saturating_add(other.retired_secure);
        self.stall_cycles = self.stall_cycles.saturating_add(other.stall_cycles);
        self.flushed = self.flushed.saturating_add(other.flushed);
        self.secure_cycles = self.secure_cycles.saturating_add(other.secure_cycles);
        for (a, b) in self.mix.iter_mut().zip(&other.mix) {
            a.normal = a.normal.saturating_add(b.normal);
            a.secure = a.secure.saturating_add(b.secure);
        }
        self.energy += other.energy;
        for theirs in &other.phases {
            if let Some(ours) = self.phases.iter_mut().find(|p| p.name == theirs.name) {
                ours.cycles = ours.cycles.saturating_add(theirs.cycles);
                ours.energy += theirs.energy;
                ours.start_cycle = ours.start_cycle.min(theirs.start_cycle);
            } else {
                self.phases.push(theirs.clone());
            }
        }
        if self.run.is_none() {
            self.run = other.run;
        }
        Ok(())
    }

    fn current_phase(&mut self, cycle: u64) -> &mut PhaseMetrics {
        if self.phases.is_empty() {
            self.phases.push(PhaseMetrics {
                name: Self::STARTUP_PHASE.to_string(),
                start_cycle: cycle,
                cycles: 0,
                energy: ComponentEnergy::default(),
            });
        }
        self.phases.last_mut().expect("non-empty")
    }
}

impl RunObserver for MetricsRegistry {
    fn on_cycle(&mut self, act: &CycleActivity, energy: &CycleEnergy) {
        self.cycles += 1;
        if act.stalled {
            self.stall_cycles += 1;
        }
        self.flushed += u64::from(act.flushed);
        if act.any_secure() {
            self.secure_cycles += 1;
        }
        if let Some(inst) = &act.retired {
            self.retired += 1;
            let entry = &mut self.mix[op_class_index(inst.op.class())];
            if inst.secure {
                self.retired_secure += 1;
                entry.secure += 1;
            } else {
                entry.normal += 1;
            }
        }
        self.energy += energy.components;
        self.cycle_energy.record(energy.total_pj());
        let phase = self.current_phase(act.cycle);
        phase.cycles += 1;
        phase.energy += energy.components;
    }

    fn on_phase(&mut self, event: &PhaseEvent) {
        // Fires before on_cycle for the marker cycle, so that cycle's
        // energy lands in the new bucket (start-inclusive windows).
        self.phases.push(PhaseMetrics {
            name: event.name.clone(),
            start_cycle: event.cycle,
            cycles: 0,
            energy: ComponentEnergy::default(),
        });
    }

    fn on_finish(&mut self, stats: &RunResult) {
        self.run = Some(*stats);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(10.0, 3);
        for v in [0.0, 5.0, 15.0, 25.0, 35.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[3, 1, 1]); // -1 clamps into bucket 0
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 79.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 35.0);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new(1.0, 1);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn boundary_samples_land_in_the_upper_bucket() {
        let mut h = Histogram::new(10.0, 4);
        for v in [0.0, 10.0, 20.0, 30.0, 40.0] {
            h.record(v);
        }
        // Half-open [k·w, (k+1)·w): each boundary value opens bucket k;
        // 40.0 is the first boundary past the last bucket → overflow.
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn non_finite_samples_overflow_without_poisoning_stats() {
        let mut h = Histogram::new(10.0, 3);
        h.record(5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(15.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.finite_count(), 2);
        assert_eq!(h.counts(), &[1, 1, 0], "NaN must not clamp into bucket 0");
        assert_eq!(h.overflow(), 3);
        assert!((h.mean() - 10.0).abs() < 1e-12, "mean over finite samples only");
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 15.0);
        // Merging a NaN-tainted histogram keeps the combined stats clean.
        let mut clean = Histogram::new(10.0, 3);
        clean.record(25.0);
        clean.merge(&h).expect("same shape");
        assert_eq!(clean.finite_count(), 3);
        assert!(clean.mean().is_finite());
        assert_eq!(clean.max(), 25.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets_and_clamp_to_observed_range() {
        let mut h = Histogram::new(10.0, 4);
        // 10 samples, uniformly one per unit across [0, 10): bucket 0
        // holds all of them.
        for i in 0..10 {
            h.record(f64::from(i));
        }
        // Rank q·10 interpolated across bucket [0, 10).
        assert!((h.quantile(0.5) - 5.0).abs() < 1e-12);
        assert!((h.quantile(0.95) - 9.0).abs() < 1e-12, "clamped to max 9.0");
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
        // Out-of-range q clamps.
        assert_eq!(h.quantile(-3.0), h.min());
        assert_eq!(h.quantile(7.0), h.max());

        // Two occupied buckets: the p50 boundary falls exactly between
        // them, the p75 sits mid-way through the upper bucket.
        let mut two = Histogram::new(10.0, 4);
        for v in [1.0, 2.0, 21.0, 29.0] {
            two.record(v);
        }
        assert!((two.quantile(0.5) - 10.0).abs() < 1e-12);
        assert!((two.quantile(0.75) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_of_empty_and_overflow_heavy_histograms() {
        let empty = Histogram::new(1.0, 4);
        assert_eq!(empty.quantile(0.5), 0.0);

        let mut h = Histogram::new(10.0, 2);
        h.record(5.0);
        for _ in 0..9 {
            h.record(1_000.0); // overflow
        }
        // p50 lands among the overflow samples: the histogram only knows
        // "past the last edge", so it reports the observed max.
        assert_eq!(h.quantile(0.5), 1_000.0);
        assert_eq!(h.quantile(0.05), 5.0, "clamps to min");
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut h = Histogram::new(5.0, 8);
        for v in [0.0, 2.0, 7.0, 7.5, 12.0, 19.0, 33.0, 50.0] {
            h.record(v);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let v = h.quantile(f64::from(i) / 100.0);
            assert!(v >= last, "q={}: {v} < {last}", f64::from(i) / 100.0);
            last = v;
        }
    }

    #[test]
    fn huge_samples_saturate_into_overflow() {
        let mut h = Histogram::new(0.001, 2);
        h.record(f64::MAX); // index would overflow any usize — saturating cast
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.max(), f64::MAX);
    }

    #[test]
    fn phase_attribution_is_start_inclusive() {
        let mut reg = MetricsRegistry::new();
        let one_pj = |cycle| CycleEnergy {
            cycle,
            components: ComponentEnergy { clock: 1.0, ..Default::default() },
        };
        // Cycles 0–1 before any marker, marker at cycle 2, cycles 2–3 after.
        for c in 0..2 {
            reg.on_cycle(&CycleActivity::idle(c), &one_pj(c));
        }
        reg.on_phase(&PhaseEvent { name: "round 1".into(), cycle: 2, index: 0 });
        for c in 2..4 {
            reg.on_cycle(&CycleActivity::idle(c), &one_pj(c));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.cycles, 4);
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.phases[0].name, MetricsRegistry::STARTUP_PHASE);
        assert_eq!(snap.phases[0].cycles, 2);
        let round = snap.phase("round 1").expect("phase recorded");
        assert_eq!(round.start_cycle, 2);
        assert_eq!(round.cycles, 2);
        assert!((round.energy.total() - 2.0).abs() < 1e-12);
        assert!((snap.total_pj() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds_samples_and_rejects_shape_mismatch() {
        let mut a = Histogram::new(10.0, 3);
        let mut b = Histogram::new(10.0, 3);
        for v in [0.0, 15.0] {
            a.record(v);
        }
        for v in [5.0, 35.0, -2.0] {
            b.record(v);
        }
        a.merge(&b).expect("same shape");
        assert_eq!(a.counts(), &[3, 1, 0]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.max(), 35.0);
        assert!((a.mean() - 53.0 / 5.0).abs() < 1e-12);

        let narrow = Histogram::new(5.0, 3);
        let before = a.clone();
        let err = a.merge(&narrow).unwrap_err();
        assert_eq!(err, MergeError::HistogramShape { expected: (10.0, 3), got: (5.0, 3) });
        assert!(err.to_string().contains("histogram shapes differ"));
        assert_eq!(a, before, "failed merge must not mutate");
    }

    #[test]
    fn registry_merge_combines_counters_and_phases_by_name() {
        let one_pj = |cycle| CycleEnergy {
            cycle,
            components: ComponentEnergy { clock: 1.0, ..Default::default() },
        };
        // Worker A: 2 startup cycles, then 1 cycle of "round 1".
        let mut a = MetricsRegistry::new();
        for c in 0..2 {
            a.on_cycle(&CycleActivity::idle(c), &one_pj(c));
        }
        a.on_phase(&PhaseEvent { name: "round 1".into(), cycle: 2, index: 0 });
        a.on_cycle(&CycleActivity::idle(2), &one_pj(2));
        // Worker B: "round 1" and a phase A never saw.
        let mut b = MetricsRegistry::new();
        b.on_phase(&PhaseEvent { name: "round 1".into(), cycle: 0, index: 0 });
        for c in 0..3 {
            b.on_cycle(&CycleActivity::idle(c), &one_pj(c));
        }
        b.on_phase(&PhaseEvent { name: "round 2".into(), cycle: 3, index: 1 });
        b.on_cycle(&CycleActivity::idle(3), &one_pj(3));

        a.merge(&b).expect("same histogram shape");
        let snap = a.snapshot();
        assert_eq!(snap.cycles, 7);
        assert!((snap.total_pj() - 7.0).abs() < 1e-12);
        let round1 = snap.phase("round 1").expect("merged by name");
        assert_eq!(round1.cycles, 4);
        assert_eq!(round1.start_cycle, 0, "start takes the minimum");
        assert_eq!(snap.phase("round 2").expect("adopted from other").cycles, 1);
        assert_eq!(snap.phases.len(), 3); // startup, round 1, round 2
        assert_eq!(snap.cycle_energy.count(), 7);
    }

    #[test]
    fn registry_merge_is_associativity_friendly_for_empty() {
        let mut empty = MetricsRegistry::new();
        let other = MetricsRegistry::new();
        empty.merge(&other).expect("empty merges");
        assert_eq!(empty.snapshot().cycles, 0);
    }

    #[test]
    fn op_class_table_is_total_and_unique() {
        let names: std::collections::BTreeSet<_> =
            OP_CLASSES.iter().map(|&c| op_class_name(c)).collect();
        assert_eq!(names.len(), OP_CLASSES.len());
        for &c in &OP_CLASSES {
            assert_eq!(OP_CLASSES[op_class_index(c)], c);
        }
    }
}
