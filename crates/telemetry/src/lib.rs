//! # emask-telemetry — observers, metrics, and structured trace export
//!
//! The observability layer for the simulated smart card: pluggable run
//! observers, a metrics registry, and exporters for external tooling.
//!
//! * [`RunObserver`] — the run-level contract: per-cycle activity +
//!   energy, phase-marker crossings, and final statistics. The unit type
//!   `()` is the free no-op observer; `(A, B)` composes two observers.
//!   (`emask-cpu` additionally offers the lower-level
//!   [`PipelineObserver`](emask_cpu::PipelineObserver) with per-bus
//!   callbacks, for tools that need microarchitectural detail without the
//!   energy model.)
//! * [`MetricsRegistry`] — counters (instruction mix by class, secure vs
//!   normal retirement, stalls, flushes), a per-cycle energy histogram,
//!   and per-phase × per-component energy attribution; snapshot into the
//!   typed [`MetricsSnapshot`].
//! * [`ChromeTrace`] — Chrome trace-event JSON (one lane per pipeline
//!   stage, phase markers as instant events) for `chrome://tracing` /
//!   Perfetto.
//! * [`CycleCsv`], [`metrics_csv`], [`summary`] — per-cycle energy CSV,
//!   per-phase metrics CSV, and the human-readable run report.
//! * [`Event`] / [`EventSink`] / [`EventBus`] — the live campaign event
//!   stream: structured replayable + operational events, a zero-cost
//!   null sink (same compile-time routing as `PipelineHook`), and a
//!   bounded backpressure-aware bus for live consumers.
//! * [`Span`] / [`SpanId`] — causal spans over the event stream:
//!   deterministic hierarchical ids (job → attempt → shard → trial)
//!   emitted as replayable open/close events, rebuildable offline into a
//!   nested Chrome trace.
//!
//! ## Example
//!
//! ```
//! use emask_telemetry::{MetricsRegistry, RunObserver, PhaseEvent};
//! use emask_cpu::CycleActivity;
//! use emask_energy::{ComponentEnergy, CycleEnergy};
//!
//! let mut metrics = MetricsRegistry::new();
//! let energy = CycleEnergy { cycle: 0, components: ComponentEnergy::default() };
//! metrics.on_phase(&PhaseEvent { name: "round 1".into(), cycle: 0, index: 0 });
//! metrics.on_cycle(&CycleActivity::idle(0), &energy);
//! assert_eq!(metrics.snapshot().phase("round 1").unwrap().cycles, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod chrome;
pub mod events;
pub mod export;
pub mod metrics;
pub mod observer;
pub mod span;
pub mod stream;

pub use chrome::{escape_json, ChromeTrace};
pub use events::{Event, EventSink, NullSink};
pub use export::{
    campaign_csv, campaign_summary, host_context, metrics_csv, recovery_coverage, recovery_summary,
    summary, summary_with_host, CampaignTrial, CycleCsv, HostContext, RecoveryTotals,
    COMPONENT_COLUMNS,
};
pub use metrics::{
    op_class_name, Histogram, MergeError, MetricsRegistry, MetricsSnapshot, MixEntry, PhaseMetrics,
    OP_CLASSES,
};
pub use observer::{PhaseEvent, RunObserver};
pub use span::{Span, SpanId};
pub use stream::{EventBus, DEFAULT_BUS_CAPACITY};
