//! Property tests for the telemetry merge algebra: splitting a sample
//! stream at any point, recording the halves into separate accumulators,
//! and merging must equal recording the whole stream into one — the
//! invariant the parallel campaign join step relies on. Covers the
//! [`Histogram`] bucket/overflow/min/max counters (exact) and the mean
//! (to float tolerance: the split changes `sum`'s addition bracketing),
//! plus the [`MetricsRegistry`] counter/phase merge.

use emask_cpu::{CycleActivity, RunResult};
use emask_energy::{ComponentEnergy, CycleEnergy};
use emask_telemetry::{Histogram, MetricsRegistry, PhaseEvent, RunObserver};
use proptest::prelude::*;

const POOL: usize = 64;

/// A sample pool and a split point (the vendored proptest has no
/// `prop_flat_map`, so the split is drawn separately and wrapped).
fn samples_and_split() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (proptest::collection::vec(-50.0f64..550.0, 1..POOL), 0usize..POOL).prop_map(|(pool, cut)| {
        let cut = cut % (pool.len() + 1);
        (pool, cut)
    })
}

fn record_all(values: &[f64]) -> Histogram {
    let mut h = Histogram::new(25.0, 20);
    for &v in values {
        h.record(v);
    }
    h
}

fn check_split_equals_whole(values: &[f64], cut: usize) {
    let whole = record_all(values);
    let mut left = record_all(&values[..cut]);
    let right = record_all(&values[cut..]);
    left.merge(&right).expect("same shape");
    assert_eq!(left.counts(), whole.counts());
    assert_eq!(left.overflow(), whole.overflow());
    assert_eq!(left.count(), whole.count());
    assert_eq!(left.finite_count(), whole.finite_count());
    assert_eq!(left.min().to_bits(), whole.min().to_bits());
    assert_eq!(left.max().to_bits(), whole.max().to_bits());
    // `sum` brackets differently across the split: tolerance, not bits.
    assert!((left.mean() - whole.mean()).abs() <= 1e-9);
    // Conservation: every sample is in a bucket or in overflow.
    let bucketed: u64 = whole.counts().iter().sum();
    assert_eq!(bucketed + whole.overflow(), whole.count());
}

/// Drives `cycles[lo..hi]` into a registry, announcing the "round 1"
/// marker at `phase_at` — or at the half's first cycle when the split
/// lands after the marker (exactly what a campaign worker resuming
/// mid-phase does).
fn drive(reg: &mut MetricsRegistry, energies: &[f64], lo: usize, hi: usize, phase_at: usize) {
    let marker_at = phase_at.max(lo);
    for (c, &e) in energies.iter().enumerate().take(hi).skip(lo) {
        if c == marker_at {
            reg.on_phase(&PhaseEvent { name: "round 1".into(), cycle: c as u64, index: 0 });
        }
        let energy = CycleEnergy {
            cycle: c as u64,
            components: ComponentEnergy { clock: e, ..Default::default() },
        };
        reg.on_cycle(&CycleActivity::idle(c as u64), &energy);
    }
    reg.on_finish(&RunResult::default());
}

fn check_registry_split(energies: &[f64], cut: usize, phase_at: usize) {
    let mut whole = MetricsRegistry::new();
    drive(&mut whole, energies, 0, energies.len(), phase_at);
    let mut left = MetricsRegistry::new();
    drive(&mut left, energies, 0, cut, phase_at);
    let mut right = MetricsRegistry::new();
    drive(&mut right, energies, cut, energies.len(), phase_at);
    left.merge(&right).expect("same histogram shape");
    let (a, b) = (left.snapshot(), whole.snapshot());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stall_cycles, b.stall_cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.cycle_energy.counts(), b.cycle_energy.counts());
    assert_eq!(a.cycle_energy.overflow(), b.cycle_energy.overflow());
    assert!((a.total_pj() - b.total_pj()).abs() <= 1e-6);
    let phase = |s: &emask_telemetry::MetricsSnapshot, name: &str| {
        s.phase(name).map(|p| p.cycles).unwrap_or(0)
    };
    assert_eq!(phase(&a, "round 1"), phase(&b, "round 1"));
    assert_eq!(
        phase(&a, MetricsRegistry::STARTUP_PHASE),
        phase(&b, MetricsRegistry::STARTUP_PHASE)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_of_splits_equals_whole(ps in samples_and_split()) {
        let (pool, cut) = ps;
        check_split_equals_whole(&pool, cut);
    }

    #[test]
    fn histogram_merge_with_specials_keeps_counts_consistent(
        ps in samples_and_split(),
        specials in proptest::collection::vec(0usize..3, 0..4),
    ) {
        // Sprinkle NaN/±inf among the finite samples; the split/merge
        // identity must still hold, and the stats must stay finite.
        let (pool, cut) = ps;
        let mut values = pool;
        for s in specials {
            values.push([f64::NAN, f64::INFINITY, f64::NEG_INFINITY][s]);
        }
        let cut = cut % (values.len() + 1);
        check_split_equals_whole(&values, cut);
        prop_assert!(record_all(&values).mean().is_finite());
    }

    #[test]
    fn boundary_values_bucket_consistently_after_merge(k in 0u32..25) {
        // A sample exactly on bucket boundary k lands in bucket k (or
        // overflow past the end) whether recorded directly or merged in.
        let v = f64::from(k) * 25.0;
        let direct = record_all(&[v]);
        let mut merged = Histogram::new(25.0, 20);
        merged.merge(&direct).expect("same shape");
        let idx = k as usize;
        if idx < 20 {
            prop_assert_eq!(merged.counts()[idx], 1);
            prop_assert_eq!(merged.overflow(), 0);
        } else {
            prop_assert_eq!(merged.overflow(), 1);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        ps in samples_and_split(),
        qa in 0u32..101,
        qb in 0u32..101,
    ) {
        let (pool, _) = ps;
        let h = record_all(&pool);
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let (qlo, qhi) = (f64::from(lo) / 100.0, f64::from(hi) / 100.0);
        // Monotone in q, and every quantile lies within [min, max].
        prop_assert!(h.quantile(qlo) <= h.quantile(qhi));
        for q in [qlo, qhi] {
            let v = h.quantile(q);
            prop_assert!(v.is_finite());
            prop_assert!(v >= h.min() && v <= h.max(), "q{q}: {v} not in [{}, {}]", h.min(), h.max());
        }
        // The extremes pin to the exact extremes.
        prop_assert_eq!(h.quantile(0.0), h.min());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantiles_survive_the_split_merge_identity(
        ps in samples_and_split(),
        q in 0u32..101,
    ) {
        // quantile() reads only counts/width/min/max — state the merge
        // reconstructs exactly — so split+merge must answer identically
        // to recording the whole stream, bit for bit.
        let (pool, cut) = ps;
        let whole = record_all(&pool);
        let mut left = record_all(&pool[..cut]);
        left.merge(&record_all(&pool[cut..])).expect("same shape");
        let q = f64::from(q) / 100.0;
        prop_assert_eq!(left.quantile(q).to_bits(), whole.quantile(q).to_bits());
    }

    #[test]
    fn registry_merge_of_splits_equals_whole(
        energies in proptest::collection::vec(0.0f64..500.0, 1..40),
        cut_frac in 0usize..40,
        phase_frac in 0usize..40,
    ) {
        let cut = cut_frac % (energies.len() + 1);
        let phase_at = phase_frac % energies.len();
        check_registry_split(&energies, cut, phase_at);
    }
}
