//! Compiling, running, measuring, and validating masked DES encryptions.

use crate::desgen::{
    des_source_with, DesProgramSpec, MARKER_INITIAL_PERM, MARKER_KEY_PERM, MARKER_OUTPUT_PERM,
    MARKER_ROUND,
};
use crate::recovery::{
    recoverable, zeroize_secrets, CheckpointCadence, RecoveryPolicy, RecoveryStats,
};
use emask_cc::{compile, CompileError, CompileOptions, MaskPolicy, SliceReport};
use emask_cpu::memory::AccessError;
use emask_cpu::{
    BackendCheckpoint, Cpu, CpuBackend, CpuError, CpuErrorKind, NullHook, PipelineHook, RunResult,
};
use emask_des::bitarray::BitArrayState;
use emask_des::bits::{from_bit_vec, to_bit_vec};
use emask_energy::{EnergyModel, EnergyParams, EnergyTrace};
use emask_isa::Program;
use emask_telemetry::{PhaseEvent, RunObserver};
use std::fmt;
use std::ops::Range;

/// An execution phase of the DES program, derived from phase markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Initial (plaintext) permutation.
    InitialPermutation,
    /// Key permutation (PC-1).
    KeyPermutation,
    /// Feistel round `1..=16`.
    Round(u8),
    /// Output inverse permutation.
    OutputPermutation,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::InitialPermutation => f.write_str("initial permutation"),
            Phase::KeyPermutation => f.write_str("key permutation"),
            Phase::Round(n) => write!(f, "round {n}"),
            Phase::OutputPermutation => f.write_str("output permutation"),
        }
    }
}

/// A phase boundary observed during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMarker {
    /// The phase that starts here.
    pub phase: Phase,
    /// The cycle of the marker store's memory access.
    pub cycle: u64,
}

/// Everything measured from one simulated encryption.
#[derive(Debug, Clone)]
pub struct EncryptionRun {
    /// The ciphertext read back from the simulated data memory, already
    /// validated against the golden model.
    pub ciphertext: u64,
    /// The per-cycle energy trace.
    pub trace: EnergyTrace,
    /// Pipeline statistics.
    pub stats: RunResult,
    /// Phase boundaries in cycle order.
    pub markers: Vec<PhaseMarker>,
}

impl EncryptionRun {
    /// The cycle window of `phase` (start inclusive, end exclusive; the
    /// end is the next marker or the end of the trace).
    pub fn phase_window(&self, phase: Phase) -> Option<Range<usize>> {
        let i = self.markers.iter().position(|m| m.phase == phase)?;
        let start = self.markers[i].cycle as usize;
        let end =
            self.markers.get(i + 1).map(|m| m.cycle as usize).unwrap_or_else(|| self.trace.len());
        Some(start..end)
    }

    /// The energy sub-trace of `phase`.
    pub fn phase_trace(&self, phase: Phase) -> Option<EnergyTrace> {
        self.phase_window(phase).map(|w| self.trace.window(w))
    }
}

/// Failures while running a compiled DES program.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The simulated CPU faulted.
    Cpu(CpuError),
    /// The simulated ciphertext disagreed with the golden model — a
    /// simulator or compiler bug, never silently ignored.
    Mismatch {
        /// What the simulation produced.
        simulated: u64,
        /// What the golden model says.
        expected: u64,
    },
    /// An output word was not a bit (0/1) — the bit-per-word contract was
    /// violated, e.g. by an injected fault.
    GarbledOutput {
        /// Index of the offending output word.
        word: usize,
        /// Its value.
        value: u32,
    },
    /// A data symbol the harness relies on (`key`, `data`, `marker`,
    /// `output`) is absent from the compiled program — a malformed or
    /// hand-edited image, surfaced as an error instead of a panic.
    MissingSymbol {
        /// The absent symbol.
        name: String,
    },
    /// Poking an input array or reading the output array hit a memory
    /// fault — the image layout disagrees with the data-memory size.
    ImageAccess {
        /// The symbol whose array was being accessed.
        name: String,
        /// Word index within the array.
        index: usize,
        /// The underlying access fault.
        source: AccessError,
    },
    /// Recovery exhausted its rollback budget on a persistent fault: the
    /// key material was destroyed ([`crate::recovery::zeroize_secrets`])
    /// and the run aborted. The smart-card response to an attack in
    /// progress — key destruction beats key disclosure.
    Zeroized {
        /// Rollbacks spent before giving up.
        rollbacks: u32,
        /// The detection that exhausted the budget.
        last: CpuError,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Cpu(e) => write!(f, "cpu fault: {e}"),
            RunError::Mismatch { simulated, expected } => write!(
                f,
                "ciphertext mismatch: simulated {simulated:016X}, golden model {expected:016X}"
            ),
            RunError::GarbledOutput { word, value } => {
                write!(f, "output word {word} is not a bit: {value}")
            }
            RunError::MissingSymbol { name } => {
                write!(f, "program has no data symbol `{name}`")
            }
            RunError::ImageAccess { name, index, source } => {
                write!(f, "accessing `{name}[{index}]`: {source}")
            }
            RunError::Zeroized { rollbacks, last } => {
                write!(f, "key zeroized after {rollbacks} rollbacks; last detection: {last}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<CpuError> for RunError {
    fn from(e: CpuError) -> Self {
        RunError::Cpu(e)
    }
}

/// A compiled, reusable masked-DES instance: one program, one policy.
///
/// Compilation happens once; every [`MaskedDes::encrypt`] call loads a
/// fresh simulated machine, pokes the key and plaintext bits into data
/// memory, runs to `halt`, and returns the validated [`EncryptionRun`].
/// Because the program has no data-dependent control flow, every run takes
/// the same number of cycles and traces are perfectly aligned — the
/// best case for the attacker, as the paper intends.
#[derive(Debug, Clone)]
pub struct MaskedDes {
    program: Program,
    report: SliceReport,
    policy: MaskPolicy,
    spec: DesProgramSpec,
    params: EnergyParams,
    asm: String,
    decryptor: bool,
    cycle_limit: u64,
}

impl MaskedDes {
    /// Compiles full 16-round DES under `policy` with calibrated energy
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the generated program fails to compile —
    /// which would be a bug in `emask-cc`, surfaced loudly.
    pub fn compile(policy: MaskPolicy) -> Result<Self, CompileError> {
        Self::compile_spec(policy, &DesProgramSpec::default())
    }

    /// Compiles a reduced-round variant (attack experiments use 2–4 rounds
    /// to keep trace matrices small).
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::compile`].
    pub fn compile_spec(policy: MaskPolicy, spec: &DesProgramSpec) -> Result<Self, CompileError> {
        Self::compile_with(policy, spec, false)
    }

    /// Compiles the full 16-round DES **decryptor** under `policy` — the
    /// same Figure 2 structure with the reverse (right-rotating) key
    /// schedule. Use [`MaskedDes::decrypt`] on the result.
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::compile`].
    pub fn compile_decryptor(policy: MaskPolicy) -> Result<Self, CompileError> {
        Self::compile_with(policy, &DesProgramSpec::default(), true)
    }

    fn compile_with(
        policy: MaskPolicy,
        spec: &DesProgramSpec,
        decrypt: bool,
    ) -> Result<Self, CompileError> {
        let src = des_source_with(spec, decrypt);
        let out = compile(&src, CompileOptions::paper_style(policy))?;
        Ok(Self {
            program: out.program,
            report: out.report,
            policy,
            spec: *spec,
            params: EnergyParams::calibrated(),
            asm: out.asm,
            decryptor: decrypt,
            cycle_limit: 50_000_000,
        })
    }

    /// Replaces the per-run cycle budget (default 50 M). Fault-injection
    /// harnesses lower it so a fault that produces an endless loop is
    /// detected quickly as [`emask_cpu::CpuErrorKind::CycleLimit`].
    pub fn with_cycle_limit(mut self, cycle_limit: u64) -> Self {
        self.cycle_limit = cycle_limit;
        self
    }

    /// True when this instance was compiled with
    /// [`MaskedDes::compile_decryptor`].
    pub fn is_decryptor(&self) -> bool {
        self.decryptor
    }

    /// Replaces the energy parameters (ablation studies).
    pub fn with_params(mut self, params: EnergyParams) -> Self {
        self.params = params;
        self
    }

    /// The masking policy.
    pub fn policy(&self) -> MaskPolicy {
        self.policy
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mutable access to the compiled program — for **fault-injection
    /// experiments** (flip table bits, skip instructions) in the spirit of
    /// the fault-generation attacks the paper's related work surveys.
    /// Every run still validates against the golden model, so injected
    /// faults surface as [`RunError::Mismatch`] rather than wrong results.
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }

    /// The generated assembly listing.
    pub fn asm(&self) -> &str {
        &self.asm
    }

    /// The forward-slice report.
    pub fn report(&self) -> &SliceReport {
        &self.report
    }

    /// Number of rounds in this instance.
    pub fn rounds(&self) -> usize {
        self.spec.rounds
    }

    /// Encrypts one block, returning the full measured run.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Cpu`] on a simulation fault and
    /// [`RunError::Mismatch`] if the ciphertext disagrees with the golden
    /// model.
    pub fn encrypt(&self, plaintext: u64, key: u64) -> Result<EncryptionRun, RunError> {
        assert!(!self.decryptor, "this instance was compiled as a decryptor; use decrypt()");
        self.run_block(plaintext, key)
    }

    /// [`MaskedDes::encrypt`] on an explicit [`CpuBackend`] — static
    /// dispatch, so `encrypt_on::<Cpu>` monomorphizes to exactly
    /// [`MaskedDes::encrypt`], while `encrypt_on::<Interpreter>` runs the
    /// same program on the reference ISS (one activity record and one
    /// energy sample per instruction instead of per pipeline cycle). The
    /// ciphertext and golden-model validation are backend-independent; the
    /// trace length and energy figures are the backend's own.
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt`].
    ///
    /// # Panics
    ///
    /// Panics if this instance is a decryptor.
    pub fn encrypt_on<B: CpuBackend>(
        &self,
        plaintext: u64,
        key: u64,
    ) -> Result<EncryptionRun, RunError> {
        self.encrypt_hooked_on::<B, NullHook>(plaintext, key, &mut NullHook)
    }

    /// [`MaskedDes::encrypt`] with a telemetry observer attached: `obs`
    /// receives every cycle's activity + energy, every phase-marker
    /// crossing (before that cycle's `on_cycle`, so phase accumulators use
    /// the same start-inclusive windows as [`EncryptionRun::phase_window`]),
    /// and the final pipeline statistics.
    ///
    /// The call is monomorphized per observer type; passing `&mut ()`
    /// compiles to exactly the unobserved [`MaskedDes::encrypt`].
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt`].
    pub fn encrypt_observed<O: RunObserver>(
        &self,
        plaintext: u64,
        key: u64,
        obs: &mut O,
    ) -> Result<EncryptionRun, RunError> {
        assert!(!self.decryptor, "this instance was compiled as a decryptor; use decrypt()");
        self.run_block_observed(plaintext, key, obs)
    }

    /// [`MaskedDes::encrypt`] with a [`PipelineHook`] installed on the
    /// simulated core — the entry point for **fault-injection campaigns**:
    /// pass a `(FaultInjector, DualRailChecker)` tuple from `emask-fault`
    /// and every planned fault strikes the live pipeline while the checker
    /// audits each cycle's dual-rail samples. A violation the checker
    /// raises surfaces as [`RunError::Cpu`] with
    /// [`emask_cpu::CpuErrorKind::DualRailViolation`]; silent corruption
    /// is still caught downstream by the golden-model validation.
    ///
    /// Monomorphized per hook type: `&mut NullHook` compiles to exactly
    /// [`MaskedDes::encrypt`].
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt`], plus whatever fault the hook raises.
    ///
    /// # Panics
    ///
    /// Panics if this instance is a decryptor.
    pub fn encrypt_hooked<H: PipelineHook>(
        &self,
        plaintext: u64,
        key: u64,
        hook: &mut H,
    ) -> Result<EncryptionRun, RunError> {
        assert!(!self.decryptor, "this instance was compiled as a decryptor; use decrypt()");
        self.run_block_full(plaintext, key, hook, &mut ())
    }

    /// [`MaskedDes::encrypt_hooked`] on an explicit [`CpuBackend`]; see
    /// [`MaskedDes::encrypt_on`]. Note that latch-lane fault injection
    /// degrades to a no-op on backends without pipeline latches (the hook
    /// still sees every cycle and all architectural state).
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt_hooked`].
    ///
    /// # Panics
    ///
    /// Panics if this instance is a decryptor.
    pub fn encrypt_hooked_on<B: CpuBackend, H: PipelineHook>(
        &self,
        plaintext: u64,
        key: u64,
        hook: &mut H,
    ) -> Result<EncryptionRun, RunError> {
        assert!(!self.decryptor, "this instance was compiled as a decryptor; use decrypt()");
        self.run_block_full_on::<B, H, ()>(plaintext, key, hook, &mut ())
    }

    /// [`MaskedDes::decrypt`] with a telemetry observer attached; see
    /// [`MaskedDes::encrypt_observed`].
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::decrypt`].
    ///
    /// # Panics
    ///
    /// Panics if this instance is an encryptor.
    pub fn decrypt_observed<O: RunObserver>(
        &self,
        ciphertext: u64,
        key: u64,
        obs: &mut O,
    ) -> Result<EncryptionRun, RunError> {
        assert!(self.decryptor, "this instance was compiled as an encryptor; use encrypt()");
        self.run_block_observed(ciphertext, key, obs)
    }

    /// Decrypts one block on a decryptor instance (see
    /// [`MaskedDes::compile_decryptor`]), with the same measurement and
    /// golden-model validation as [`MaskedDes::encrypt`].
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt`].
    ///
    /// # Panics
    ///
    /// Panics if this instance is an encryptor.
    pub fn decrypt(&self, ciphertext: u64, key: u64) -> Result<EncryptionRun, RunError> {
        assert!(self.decryptor, "this instance was compiled as an encryptor; use encrypt()");
        self.run_block(ciphertext, key)
    }

    /// CBC encryption of a multi-block message on the simulated machine:
    /// each block's input is `plaintext_i ⊕ previous_ciphertext`, chained
    /// by the host (the protocol layer of a real smart card). Returns the
    /// ciphertext blocks and the concatenated energy trace of all runs.
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt`], for any block.
    ///
    /// # Panics
    ///
    /// Panics on a decryptor instance.
    pub fn encrypt_cbc(
        &self,
        blocks: &[u64],
        iv: u64,
        key: u64,
    ) -> Result<(Vec<u64>, EnergyTrace), RunError> {
        assert!(!self.decryptor, "CBC chaining is encrypt-only here");
        let mut prev = iv;
        let mut ciphertexts = Vec::with_capacity(blocks.len());
        let mut trace = EnergyTrace::new();
        for &block in blocks {
            let run = self.run_block(block ^ prev, key)?;
            prev = run.ciphertext;
            ciphertexts.push(run.ciphertext);
            trace.extend(run.trace.samples().iter().copied());
        }
        Ok((ciphertexts, trace))
    }

    /// A shareable trace oracle for the attack suite: maps a plaintext to
    /// the energy samples of `window` under the fixed `key`. The closure
    /// borrows `self` immutably — and `MaskedDes` is `Sync` (all-owned
    /// compiled state, no interior mutability) — so the same instance
    /// drives the `_par` attack entry points from every worker thread
    /// without cloning the compiled program.
    ///
    /// # Panics
    ///
    /// The returned closure panics if an encryption fails — a simulator
    /// bug, not a data condition, and attack campaigns have no way to
    /// use a partial trace set.
    pub fn trace_oracle(
        &self,
        key: u64,
        window: Range<usize>,
    ) -> impl Fn(u64) -> Vec<f64> + Sync + '_ {
        move |plaintext| {
            let run = self.encrypt(plaintext, key).expect("oracle run");
            run.trace.window(window.clone()).samples().to_vec()
        }
    }

    fn run_block(&self, input: u64, key: u64) -> Result<EncryptionRun, RunError> {
        self.run_block_full(input, key, &mut NullHook, &mut ())
    }

    fn run_block_observed<O: RunObserver>(
        &self,
        input: u64,
        key: u64,
        obs: &mut O,
    ) -> Result<EncryptionRun, RunError> {
        self.run_block_full(input, key, &mut NullHook, obs)
    }

    /// The byte address of a required data symbol, as a typed error when
    /// absent (a malformed image must not panic a CLI run).
    fn data_sym(&self, name: &str) -> Result<u32, RunError> {
        self.program
            .try_data_addr(name)
            .ok_or_else(|| RunError::MissingSymbol { name: name.to_string() })
    }

    /// Pokes a 64-bit value into a bit-per-word data array, MSB first
    /// (paper Figure 4 layout), on any backend.
    fn poke_bits<B: CpuBackend>(
        cpu: &mut B,
        name: &str,
        base: u32,
        value: u64,
    ) -> Result<(), RunError> {
        for (i, b) in to_bit_vec(value).iter().enumerate() {
            cpu.memory_mut().store(base + 4 * i as u32, u32::from(*b)).map_err(|source| {
                RunError::ImageAccess { name: name.to_string(), index: i, source }
            })?;
        }
        Ok(())
    }

    fn run_block_full<H: PipelineHook, O: RunObserver>(
        &self,
        input: u64,
        key: u64,
        hook: &mut H,
        obs: &mut O,
    ) -> Result<EncryptionRun, RunError> {
        // The hot path: pinned to the pipeline backend so the unmasked
        // `encrypt` loop monomorphizes exactly as before the trait existed.
        self.run_block_full_on::<Cpu, H, O>(input, key, hook, obs)
    }

    fn run_block_full_on<B: CpuBackend, H: PipelineHook, O: RunObserver>(
        &self,
        input: u64,
        key: u64,
        hook: &mut H,
        obs: &mut O,
    ) -> Result<EncryptionRun, RunError> {
        let plaintext = input;
        let mut cpu = B::load(&self.program);
        let key_addr = self.data_sym("key")?;
        let data_addr = self.data_sym("data")?;
        Self::poke_bits(&mut cpu, "key", key_addr, key)?;
        Self::poke_bits(&mut cpu, "data", data_addr, plaintext)?;
        let marker_addr = self.data_sym("marker")?;

        let mut model = EnergyModel::with_params(self.params);
        let mut trace = EnergyTrace::new();
        let mut markers = Vec::new();
        let stats = cpu.run_hooked_with(self.cycle_limit, hook, |act| {
            let energy = model.observe(act);
            // Markers first: the marker cycle belongs to the *new* phase
            // (start-inclusive windows), so phase-switching observers must
            // see on_phase before this cycle's on_cycle.
            if let Some(mem) = act.mem {
                if mem.is_store && mem.addr == marker_addr {
                    if let Some(phase) = phase_of_marker(mem.data) {
                        obs.on_phase(&PhaseEvent {
                            name: phase.to_string(),
                            cycle: act.cycle,
                            index: markers.len(),
                        });
                        markers.push(PhaseMarker { phase, cycle: act.cycle });
                    }
                }
            }
            obs.on_cycle(act, &energy);
            trace.push(energy);
        })?;
        obs.on_finish(&stats);
        let ciphertext = self.read_validated_output(&cpu, plaintext, key)?;
        Ok(EncryptionRun { ciphertext, trace, stats, markers })
    }

    /// Reads the 64-word ciphertext array back from a halted machine and
    /// validates it against the golden model.
    fn read_validated_output<B: CpuBackend>(
        &self,
        cpu: &B,
        input: u64,
        key: u64,
    ) -> Result<u64, RunError> {
        let out_addr = self.data_sym("output")?;
        let mut bits = [0u8; 64];
        for (i, bit) in bits.iter_mut().enumerate() {
            let w = cpu.memory().load(out_addr + 4 * i as u32).map_err(|source| {
                RunError::ImageAccess { name: "output".to_string(), index: i, source }
            })?;
            if w > 1 {
                // A fault (injected or otherwise) broke the bit-per-word
                // contract: surface it cleanly rather than panicking.
                return Err(RunError::GarbledOutput { word: i, value: w });
            }
            *bit = w as u8;
        }
        let ciphertext = from_bit_vec(&bits);
        let expected = if self.decryptor {
            emask_des::Des::new(key).decrypt_block(input)
        } else {
            golden(input, key, self.spec.rounds)
        };
        if ciphertext != expected {
            return Err(RunError::Mismatch { simulated: ciphertext, expected });
        }
        Ok(ciphertext)
    }

    /// [`MaskedDes::encrypt_hooked`] with checkpoint/rollback **recovery**:
    /// the run takes architectural checkpoints at the policy's cadence, and
    /// a fault the core *detects* (dual-rail violation, memory fault,
    /// divide-by-zero, runaway PC) rolls the machine back to the last
    /// checkpoint and re-executes instead of aborting.
    ///
    /// A transient fault (the usual glitch model) has already fired when
    /// the replay starts, so the replay is clean: the run completes with a
    /// ciphertext, retired-instruction stream, and energy trace
    /// **bit-identical to a fault-free run** — rolled-back cycles are
    /// truncated from the trace and the energy model's transition state is
    /// restored along with the machine. A persistent fault re-fires on
    /// every replay; after [`RecoveryPolicy::max_retries`] rollbacks the
    /// key material is zeroized and the run aborts with
    /// [`RunError::Zeroized`].
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt_hooked`], plus [`RunError::Zeroized`]
    /// on budget exhaustion. [`emask_cpu::CpuErrorKind::CycleLimit`] is
    /// never retried: the cycle budget bounds *total* work including
    /// re-execution.
    ///
    /// # Panics
    ///
    /// Panics if this instance is a decryptor.
    pub fn encrypt_recovered<H: PipelineHook>(
        &self,
        plaintext: u64,
        key: u64,
        hook: &mut H,
        policy: &RecoveryPolicy,
    ) -> Result<RecoveredRun, RunError> {
        self.encrypt_recovered_on::<Cpu, H>(plaintext, key, hook, policy)
    }

    /// [`MaskedDes::encrypt_recovered`] on an explicit checkpoint-capable
    /// [`CpuBackend`]. Rollback cost and cadence are microarchitectural —
    /// the interpreter counts instructions where the pipeline counts cycles
    /// — but the recovered ciphertext and retired-instruction stream are
    /// architectural and identical across backends.
    ///
    /// # Errors
    ///
    /// As for [`MaskedDes::encrypt_recovered`].
    ///
    /// # Panics
    ///
    /// Panics if this instance is a decryptor, or if
    /// `B::SUPPORTS_CHECKPOINT` is `false`.
    pub fn encrypt_recovered_on<B: CpuBackend, H: PipelineHook>(
        &self,
        plaintext: u64,
        key: u64,
        hook: &mut H,
        policy: &RecoveryPolicy,
    ) -> Result<RecoveredRun, RunError> {
        assert!(!self.decryptor, "this instance was compiled as a decryptor; use decrypt()");
        assert!(
            B::SUPPORTS_CHECKPOINT,
            "backend {} does not support checkpoint/rollback recovery",
            B::NAME
        );
        let mut cpu = B::load(&self.program);
        let key_addr = self.data_sym("key")?;
        let data_addr = self.data_sym("data")?;
        let marker_addr = self.data_sym("marker")?;
        Self::poke_bits(&mut cpu, "key", key_addr, key)?;
        Self::poke_bits(&mut cpu, "data", data_addr, plaintext)?;

        let mut model = EnergyModel::with_params(self.params);
        let mut trace = EnergyTrace::new();
        let mut markers: Vec<PhaseMarker> = Vec::new();
        // The implicit cycle-0 checkpoint plus the state that must rewind
        // with it: the energy model (transition-sensitive bus state) and
        // the marker list.
        let mut cp = cpu.checkpoint();
        let mut cp_model = model.clone();
        let mut cp_marker_len = 0usize;
        let mut recovery = RecoveryStats::default();
        // Steps actually executed, *including* re-executed windows. The
        // architectural cycle counter rolls back with the checkpoint, so
        // the budget is enforced on this monotone counter instead.
        let mut executed: u64 = 0;

        while !cpu.is_halted() {
            if executed >= self.cycle_limit {
                return Err(RunError::Cpu(CpuError {
                    cycle: cpu.cycles(),
                    kind: CpuErrorKind::CycleLimit { limit: self.cycle_limit },
                }));
            }
            executed += 1;
            match cpu.step_hooked(hook) {
                Ok(act) => {
                    let energy = model.observe(&act);
                    let mut marker_this_cycle = false;
                    if let Some(mem) = act.mem {
                        if mem.is_store && mem.addr == marker_addr {
                            if let Some(phase) = phase_of_marker(mem.data) {
                                markers.push(PhaseMarker { phase, cycle: act.cycle });
                                marker_this_cycle = true;
                            }
                        }
                    }
                    trace.push(energy);
                    let boundary = match policy.cadence {
                        CheckpointCadence::Retired(n) => {
                            n > 0 && cpu.stats().retired - cp.retired() >= n
                        }
                        CheckpointCadence::PhaseMarkers => marker_this_cycle,
                    };
                    if boundary {
                        cpu.checkpoint_refresh(&mut cp);
                        cp_model = model.clone();
                        cp_marker_len = markers.len();
                        recovery.checkpoints += 1;
                        recovery.pages_moved += cp.pages_moved() as u64;
                    }
                }
                Err(e) if recoverable(e.kind) => {
                    if recovery.rollbacks >= policy.max_retries {
                        zeroize_secrets(&mut cpu, key_addr);
                        return Err(RunError::Zeroized { rollbacks: recovery.rollbacks, last: e });
                    }
                    recovery.rollbacks += 1;
                    cpu.checkpoint_restore(&mut cp);
                    recovery.pages_moved += cp.pages_moved() as u64;
                    model = cp_model.clone();
                    trace.truncate(cp.cycle() as usize);
                    markers.truncate(cp_marker_len);
                }
                Err(e) => return Err(RunError::Cpu(e)),
            }
        }
        let stats = cpu.stats();
        let ciphertext = self.read_validated_output(&cpu, plaintext, key)?;
        Ok(RecoveredRun { run: EncryptionRun { ciphertext, trace, stats, markers }, recovery })
    }
}

/// An [`EncryptionRun`] that executed under a [`RecoveryPolicy`], with the
/// recovery bookkeeping attached.
#[derive(Debug, Clone)]
pub struct RecoveredRun {
    /// The measured run — bit-identical to a fault-free run when every
    /// fault was recovered.
    pub run: EncryptionRun,
    /// Checkpoints taken, rollbacks spent, pages moved.
    pub recovery: RecoveryStats,
}

/// The golden-model reference for `rounds`-round DES.
fn golden(plaintext: u64, key: u64, rounds: usize) -> u64 {
    let mut st = BitArrayState::new(plaintext, key);
    for m in 1..=rounds {
        st.round(m);
    }
    st.output()
}

fn phase_of_marker(value: u32) -> Option<Phase> {
    match value {
        MARKER_INITIAL_PERM => Some(Phase::InitialPermutation),
        MARKER_KEY_PERM => Some(Phase::KeyPermutation),
        MARKER_OUTPUT_PERM => Some(Phase::OutputPermutation),
        v if v > MARKER_ROUND && v <= MARKER_ROUND + 16 => {
            Some(Phase::Round((v - MARKER_ROUND) as u8))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emask_des::Des;

    const KEY: u64 = 0x1334_5779_9BBC_DFF1;
    const PLAIN: u64 = 0x0123_4567_89AB_CDEF;

    fn two_rounds(policy: MaskPolicy) -> MaskedDes {
        MaskedDes::compile_spec(policy, &DesProgramSpec { rounds: 2 }).expect("compile")
    }

    #[test]
    fn full_des_matches_fips_walkthrough() {
        let des = MaskedDes::compile(MaskPolicy::None).expect("compile");
        let run = des.encrypt(PLAIN, KEY).expect("run");
        assert_eq!(run.ciphertext, 0x85E8_1354_0F0A_B405);
        assert_eq!(run.ciphertext, Des::new(KEY).encrypt_block(PLAIN));
    }

    #[test]
    fn encrypt_on_backends_agree_architecturally() {
        // The same compiled program on the reference interpreter produces
        // the same ciphertext, retirement/memory-traffic counts and phase
        // sequence as the pipeline — only microarchitectural figures
        // (cycles, stalls, per-cycle energy) may differ.
        let des = two_rounds(MaskPolicy::Selective);
        let pipe = des.encrypt(PLAIN, KEY).expect("pipeline run");
        let interp = des.encrypt_on::<emask_cpu::Interpreter>(PLAIN, KEY).expect("interp run");
        assert_eq!(interp.ciphertext, pipe.ciphertext);
        assert_eq!(interp.stats.retired, pipe.stats.retired);
        assert_eq!(interp.stats.loads, pipe.stats.loads);
        assert_eq!(interp.stats.stores, pipe.stats.stores);
        let phases = |run: &EncryptionRun| run.markers.iter().map(|m| m.phase).collect::<Vec<_>>();
        assert_eq!(phases(&interp), phases(&pipe));
        assert!(!interp.trace.is_empty());
    }

    #[test]
    fn recovery_on_interpreter_recovers_a_transient_fault() {
        // The recovery loop is generic: the interpreter's checkpoint
        // rewinds instructions instead of pipeline cycles, but the
        // recovered run is still bit-identical to a clean one.
        let des = two_rounds(MaskPolicy::Selective);
        let clean = des.encrypt_on::<emask_cpu::Interpreter>(PLAIN, KEY).expect("clean run");
        let mut hook = TransientFault { at_cycle: clean.stats.cycles / 2, fired: false };
        let rec = des
            .encrypt_recovered_on::<emask_cpu::Interpreter, _>(
                PLAIN,
                KEY,
                &mut hook,
                &RecoveryPolicy::default(),
            )
            .expect("recovered run");
        assert_eq!(rec.recovery.rollbacks, 1);
        assert_eq!(rec.run.ciphertext, clean.ciphertext);
        assert_eq!(rec.run.stats, clean.stats);
        assert_eq!(rec.run.trace, clean.trace, "trace must be bit-identical");
        assert_eq!(rec.run.markers, clean.markers);
    }

    #[test]
    fn full_des_matches_under_selective_masking() {
        let des = MaskedDes::compile(MaskPolicy::Selective).expect("compile");
        let run = des.encrypt(PLAIN, KEY).expect("run");
        assert_eq!(run.ciphertext, 0x85E8_1354_0F0A_B405);
        assert!(des.program().secure_instruction_count() > 0);
    }

    #[test]
    fn reduced_round_variants_match_golden_model() {
        for rounds in [1usize, 2, 4] {
            let des = MaskedDes::compile_spec(MaskPolicy::Selective, &DesProgramSpec { rounds })
                .expect("compile");
            let run = des.encrypt(PLAIN, KEY).expect("run");
            assert_eq!(run.ciphertext, golden(PLAIN, KEY, rounds), "{rounds} rounds");
        }
    }

    #[test]
    fn traces_are_aligned_across_inputs() {
        // No data-dependent control flow → identical cycle counts.
        let des = two_rounds(MaskPolicy::None);
        let a = des.encrypt(0, 0).expect("run");
        let b = des.encrypt(u64::MAX, 0xFFFF_FFFF_0000_0000).expect("run");
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.stats.cycles, b.stats.cycles);
    }

    #[test]
    fn masked_des_is_shareable_across_threads() {
        // The parallel attack layer hands one `&MaskedDes` to every
        // worker; this pins the auto-traits that makes that legal.
        fn assert_sync_send_clone<T: Sync + Send + Clone>() {}
        assert_sync_send_clone::<MaskedDes>();
    }

    #[test]
    fn trace_oracle_reproduces_encrypt_windows() {
        let des = two_rounds(MaskPolicy::None);
        let run = des.encrypt(PLAIN, KEY).expect("run");
        let window = run.phase_window(Phase::Round(1)).expect("round 1 window");
        let oracle = des.trace_oracle(KEY, window.clone());
        let direct = run.trace.window(window).samples().to_vec();
        assert_eq!(oracle(PLAIN), direct);
        assert!(!oracle(PLAIN).is_empty());
        // And it is genuinely usable from multiple threads at once.
        std::thread::scope(|s| {
            let a = s.spawn(|| oracle(0));
            let b = s.spawn(|| oracle(0));
            assert_eq!(a.join().expect("thread a"), b.join().expect("thread b"));
        });
    }

    #[test]
    fn markers_cover_all_phases_in_order() {
        let des = two_rounds(MaskPolicy::None);
        let run = des.encrypt(PLAIN, KEY).expect("run");
        let phases: Vec<Phase> = run.markers.iter().map(|m| m.phase).collect();
        assert_eq!(
            phases,
            vec![
                Phase::InitialPermutation,
                Phase::KeyPermutation,
                Phase::Round(1),
                Phase::Round(2),
                Phase::OutputPermutation,
            ]
        );
        // Strictly increasing cycles.
        assert!(run.markers.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn phase_windows_partition_the_run() {
        let des = two_rounds(MaskPolicy::None);
        let run = des.encrypt(PLAIN, KEY).expect("run");
        let w1 = run.phase_window(Phase::Round(1)).expect("round 1 window");
        let w2 = run.phase_window(Phase::Round(2)).expect("round 2 window");
        assert_eq!(w1.end, w2.start);
        assert!(run.phase_trace(Phase::Round(1)).expect("round 1 trace").total_pj() > 0.0);
        assert!(run.phase_window(Phase::Round(3)).is_none());
    }

    #[test]
    fn phase_lookup_handles_missing_and_out_of_range_phases() {
        let des = two_rounds(MaskPolicy::None);
        let run = des.encrypt(PLAIN, KEY).expect("run");
        // Rounds the reduced-round program never reaches, plus round
        // numbers no program can emit (markers only encode 1..=16).
        for phase in [Phase::Round(3), Phase::Round(0), Phase::Round(17), Phase::Round(255)] {
            assert_eq!(run.phase_window(phase), None, "{phase:?}");
            assert_eq!(run.phase_trace(phase), None, "{phase:?}");
        }
    }

    #[test]
    fn phase_lookup_on_empty_run_is_none() {
        let run = EncryptionRun {
            ciphertext: 0,
            trace: EnergyTrace::new(),
            stats: Default::default(),
            markers: Vec::new(),
        };
        assert_eq!(run.phase_window(Phase::InitialPermutation), None);
        assert_eq!(run.phase_trace(Phase::Round(1)), None);
    }

    #[test]
    fn last_phase_window_extends_to_trace_end() {
        let des = two_rounds(MaskPolicy::None);
        let run = des.encrypt(PLAIN, KEY).expect("run");
        let w = run.phase_window(Phase::OutputPermutation).expect("output window");
        assert_eq!(w.end, run.trace.len());
        // A marker sitting past the recorded trace must not panic the
        // window slice; exercise via a hand-built run.
        let tiny = EncryptionRun {
            ciphertext: 0,
            trace: EnergyTrace::from_samples(vec![1.0, 2.0]),
            stats: Default::default(),
            markers: vec![PhaseMarker { phase: Phase::Round(1), cycle: 1 }],
        };
        assert_eq!(tiny.phase_trace(Phase::Round(1)).expect("round 1 trace").samples(), &[2.0]);
    }

    #[test]
    fn secure_counts_ordered_across_policies() {
        let none = two_rounds(MaskPolicy::None);
        let sel = two_rounds(MaskPolicy::Selective);
        let ls = two_rounds(MaskPolicy::AllLoadsStores);
        let all = two_rounds(MaskPolicy::AllInstructions);
        let count = |d: &MaskedDes| d.program().secure_instruction_count();
        assert_eq!(count(&none), 0);
        assert!(count(&sel) > 0);
        assert!(count(&sel) < count(&all));
        assert!(count(&ls) < count(&all));
        // Everything except the 2-instruction startup stub (jal main;
        // halt), which is outside the compiled program.
        assert_eq!(count(&all), all.program().text.len() - 2);
    }

    #[test]
    fn energy_ordering_matches_paper_table() {
        // none < selective < all-loads-stores < all-instructions.
        let key = KEY;
        let totals: Vec<f64> = [
            MaskPolicy::None,
            MaskPolicy::Selective,
            MaskPolicy::AllLoadsStores,
            MaskPolicy::AllInstructions,
        ]
        .iter()
        .map(|&p| two_rounds(p).encrypt(PLAIN, key).expect("run").trace.total_pj())
        .collect();
        assert!(totals[0] < totals[1], "selective must cost more than none: {totals:?}");
        assert!(totals[1] < totals[2], "selective must beat all-loads-stores: {totals:?}");
        assert!(totals[2] < totals[3], "all-loads-stores must beat all-secure: {totals:?}");
    }

    #[test]
    fn masked_key_energy_is_key_independent() {
        // The core claim: with selective masking, two different keys give
        // *identical* energy traces for the same plaintext.
        let des = two_rounds(MaskPolicy::Selective);
        let a = des.encrypt(PLAIN, KEY).expect("run");
        let b = des.encrypt(PLAIN, KEY ^ (1 << 62)).expect("run");
        // The output permutation legitimately differs: different keys give
        // different (public) ciphertexts. Everything before it must be
        // bit-for-bit identical in energy.
        let end = a.phase_window(Phase::OutputPermutation).expect("marker").start;
        let diff = a.trace.window(0..end).diff(&b.trace.window(0..end));
        assert!(diff.max_abs() < 1e-9, "masked traces differ by up to {} pJ", diff.max_abs());
    }

    #[test]
    fn unmasked_key_energy_leaks() {
        let des = two_rounds(MaskPolicy::None);
        let a = des.encrypt(PLAIN, KEY).expect("run");
        let b = des.encrypt(PLAIN, KEY ^ (1 << 62)).expect("run");
        let diff = a.trace.diff(&b.trace);
        assert!(diff.max_abs() > 1.0, "unmasked traces must differ: {}", diff.max_abs());
    }

    #[test]
    fn plaintext_differences_survive_masking_only_in_initial_permutation() {
        let des = two_rounds(MaskPolicy::Selective);
        let a = des.encrypt(PLAIN, KEY).expect("run");
        let b = des.encrypt(PLAIN ^ (1 << 40), KEY).expect("run");
        let diff = a.trace.diff(&b.trace);
        // Differences exist (the plaintext is public and unmasked)...
        assert!(diff.max_abs() > 1.0);
        // ...but none in the secure rounds' key-generation region: check
        // the full key permutation window is clean.
        let w = a.phase_window(Phase::KeyPermutation).expect("key perm window");
        let kp = diff.window(w);
        assert!(kp.max_abs() < 1e-9, "key permutation leaked plaintext: {}", kp.max_abs());
    }

    #[test]
    fn cbc_on_the_simulator_matches_host_side_chaining() {
        let des = two_rounds(MaskPolicy::None);
        let blocks = [0x1111_2222_3333_4444u64, 0x5555_6666_7777_8888, 0x9999_AAAA_BBBB_CCCC];
        let iv = 0x0F0F_0F0F_F0F0_F0F0;
        let (cts, trace) = des.encrypt_cbc(&blocks, iv, KEY).expect("cbc");
        // Reference chaining through the same reduced-round golden model.
        let mut prev = iv;
        for (p, &c) in blocks.iter().zip(&cts) {
            let expect = golden(p ^ prev, KEY, 2);
            assert_eq!(c, expect);
            prev = c;
        }
        // Concatenated trace covers all three runs.
        let single = des.encrypt(blocks[0] ^ iv, KEY).expect("run").trace.len();
        assert_eq!(trace.len(), 3 * single);
    }

    #[test]
    fn decryptor_inverts_the_golden_encryption() {
        let dec = MaskedDes::compile_decryptor(MaskPolicy::None).expect("compile");
        assert!(dec.is_decryptor());
        let run = dec.decrypt(0x85E8_1354_0F0A_B405, KEY).expect("run");
        assert_eq!(run.ciphertext, PLAIN);
    }

    #[test]
    fn masked_decryptor_is_key_indistinguishable() {
        let dec = MaskedDes::compile_decryptor(MaskPolicy::Selective).expect("compile");
        let a = dec.decrypt(PLAIN, KEY).expect("run");
        let b = dec.decrypt(PLAIN, KEY ^ (1 << 62)).expect("run");
        let end = a.phase_window(Phase::OutputPermutation).expect("marker").start;
        let diff = a.trace.window(0..end).diff(&b.trace.window(0..end));
        assert!(diff.max_abs() < 1e-9, "masked decryptor leaked {} pJ", diff.max_abs());
    }

    #[test]
    #[should_panic(expected = "compiled as an encryptor")]
    fn decrypt_on_encryptor_panics() {
        let des = two_rounds(MaskPolicy::None);
        let _ = des.decrypt(0, 0);
    }

    /// A one-shot transient: corrupts a register at `at_cycle` and reports
    /// a dual-rail detection the same cycle — the recover-once scenario.
    struct TransientFault {
        at_cycle: u64,
        fired: bool,
    }

    impl PipelineHook for TransientFault {
        fn before_cycle(&mut self, ctx: &mut emask_cpu::HookCtx<'_>) {
            if !self.fired && ctx.cycle() == self.at_cycle {
                ctx.flip_reg(9, 0xFFFF);
            }
        }
        fn after_cycle(&mut self, act: &emask_cpu::CycleActivity) -> Result<(), CpuErrorKind> {
            if !self.fired && act.cycle == self.at_cycle {
                self.fired = true;
                return Err(CpuErrorKind::DualRailViolation {
                    bus: emask_cpu::Bus::OperandA,
                    agreeing: 0xFFFF,
                });
            }
            Ok(())
        }
    }

    /// A persistent (stuck-at) detection: fires at every cycle at or past
    /// `from_cycle`, so every replay detects again.
    struct PersistentFault {
        from_cycle: u64,
    }

    impl PipelineHook for PersistentFault {
        fn after_cycle(&mut self, act: &emask_cpu::CycleActivity) -> Result<(), CpuErrorKind> {
            if act.cycle >= self.from_cycle {
                return Err(CpuErrorKind::DualRailViolation {
                    bus: emask_cpu::Bus::Memory,
                    agreeing: 1,
                });
            }
            Ok(())
        }
    }

    #[test]
    fn clean_run_under_recovery_matches_plain_encrypt() {
        let des = two_rounds(MaskPolicy::Selective);
        let clean = des.encrypt(PLAIN, KEY).expect("clean run");
        for policy in [RecoveryPolicy::default(), RecoveryPolicy::every_retired(200)] {
            let rec =
                des.encrypt_recovered(PLAIN, KEY, &mut NullHook, &policy).expect("recovered run");
            assert_eq!(rec.run.ciphertext, clean.ciphertext);
            assert_eq!(rec.run.trace, clean.trace, "trace must be bit-identical");
            assert_eq!(rec.run.stats, clean.stats);
            assert_eq!(rec.run.markers, clean.markers);
            assert_eq!(rec.recovery.rollbacks, 0);
            assert!(rec.recovery.checkpoints > 0, "cadence must have fired");
        }
    }

    #[test]
    fn transient_fault_is_recovered_transparently() {
        let des = two_rounds(MaskPolicy::Selective);
        let clean = des.encrypt(PLAIN, KEY).expect("clean run");
        let at_cycle = clean.stats.cycles / 2;
        // Without recovery the same hook kills the run.
        let mut hook = TransientFault { at_cycle, fired: false };
        let err = des.encrypt_hooked(PLAIN, KEY, &mut hook).expect_err("detected");
        assert!(matches!(
            err,
            RunError::Cpu(CpuError { kind: CpuErrorKind::DualRailViolation { .. }, .. })
        ));
        // With recovery the run completes bit-identically to a clean one:
        // same ciphertext, same retired-instruction counts, same energy
        // trace — checkpoint/rollback is transparent.
        for policy in [RecoveryPolicy::default(), RecoveryPolicy::every_retired(300)] {
            let mut hook = TransientFault { at_cycle, fired: false };
            let rec = des.encrypt_recovered(PLAIN, KEY, &mut hook, &policy).expect("recovered run");
            assert_eq!(rec.recovery.rollbacks, 1, "exactly one rollback");
            assert_eq!(rec.run.ciphertext, clean.ciphertext);
            assert_eq!(rec.run.stats, clean.stats, "retired stream must match");
            assert_eq!(rec.run.markers, clean.markers);
            assert_eq!(
                rec.run.trace, clean.trace,
                "energy trace must be bit-identical after rollback"
            );
        }
    }

    #[test]
    fn persistent_fault_exhausts_budget_and_zeroizes() {
        let des = two_rounds(MaskPolicy::Selective);
        let clean_cycles = des.encrypt(PLAIN, KEY).expect("clean run").stats.cycles;
        let mut hook = PersistentFault { from_cycle: clean_cycles / 2 };
        let policy = RecoveryPolicy::default().with_max_retries(3);
        let err =
            des.encrypt_recovered(PLAIN, KEY, &mut hook, &policy).expect_err("budget exhausted");
        match err {
            RunError::Zeroized { rollbacks, last } => {
                assert_eq!(rollbacks, 3);
                assert!(matches!(last.kind, CpuErrorKind::DualRailViolation { .. }));
            }
            other => panic!("expected Zeroized, got {other:?}"),
        }
        assert!(err.to_string().contains("zeroized after 3 rollbacks"));
    }

    #[test]
    fn cycle_limit_is_never_retried() {
        // The budget bounds total work including re-execution: a run that
        // exceeds it surfaces CycleLimit even under recovery.
        let des = two_rounds(MaskPolicy::None).with_cycle_limit(100);
        let err = des
            .encrypt_recovered(PLAIN, KEY, &mut NullHook, &RecoveryPolicy::default())
            .expect_err("tiny budget");
        assert!(matches!(
            err,
            RunError::Cpu(CpuError { kind: CpuErrorKind::CycleLimit { limit: 100 }, .. })
        ));
    }

    #[test]
    fn mismatch_error_is_loud() {
        // Corrupt the round-1 rotation amount (1 -> 0): K1 changes for
        // any key whose C0/D0 are not rotation-invariant, so the
        // ciphertext must diverge from the golden model.
        let mut des = two_rounds(MaskPolicy::None);
        let addr = des.program.data_addr("shifts");
        let word = ((addr - emask_isa::program::DATA_BASE) / 4) as usize;
        des.program.data[word] ^= 1;
        let err = des.encrypt(PLAIN, KEY).expect_err("corrupted shifts");
        assert!(matches!(err, RunError::Mismatch { .. }));
        assert!(err.to_string().contains("mismatch"));
    }
}
