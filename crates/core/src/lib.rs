//! # emask-core — energy-masked DES, end to end
//!
//! The paper's complete system assembled from the workspace substrates:
//!
//! 1. [`desgen`] generates the **bit-per-word DES program** of the paper's
//!    Figure 2/Figure 4 in Tiny-C, with the key annotated `secure` and the
//!    output inverse permutation declassified;
//! 2. `emask-cc` compiles it under a [`MaskPolicy`] (forward slicing
//!    selects the secure instructions);
//! 3. `emask-cpu` executes it cycle-by-cycle on the 5-stage smart-card
//!    core;
//! 4. `emask-energy` converts the activity stream into a per-cycle
//!    picojoule trace;
//! 5. the ciphertext is validated against the `emask-des` golden model on
//!    every run — a wrong simulation can never masquerade as a result.
//!
//! [`MaskedDes`] is the user-facing entry point; [`EncryptionRun`] carries
//! the ciphertext, the [`EnergyTrace`], pipeline statistics, and the phase
//! markers used to window the paper's figures (key permutation, each of
//! the 16 rounds, output permutation).
//!
//! ## Example
//!
//! ```no_run
//! use emask_core::{MaskedDes, MaskPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let des = MaskedDes::compile(MaskPolicy::Selective)?;
//! let run = des.encrypt(0x0123456789ABCDEF, 0x133457799BBCDFF1)?;
//! assert_eq!(run.ciphertext, 0x85E813540F0AB405);
//! println!("{} pJ/cycle over {} cycles", run.trace.mean_pj(), run.trace.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod desgen;
pub mod recovery;
pub mod runner;
pub mod xtea;

pub use desgen::{des_source, DesProgramSpec};
pub use emask_cc::MaskPolicy;
pub use emask_energy::{EnergyParams, EnergyTrace, SecureStyle};
pub use emask_telemetry::{
    ChromeTrace, CycleCsv, MetricsRegistry, MetricsSnapshot, PhaseEvent, RunObserver,
};
pub use recovery::{CheckpointCadence, RecoveryPolicy, RecoveryStats};
pub use runner::{EncryptionRun, MaskedDes, Phase, PhaseMarker, RecoveredRun, RunError};
pub use xtea::{xtea_decrypt, xtea_encrypt, MaskedXtea, XteaRun};
