//! Checkpoint/rollback recovery policy for masked-DES runs.
//!
//! The paper's smart-card setting pairs power-analysis masking with the
//! sibling threat of *fault* attacks: an adversary glitches the core and
//! reads secrets out of the wrong ciphertext (Biham–Shamir differential
//! fault analysis). PR 2 added the attacker side — fault injection plus
//! dual-rail detection — but detection alone just kills the run. This
//! module closes the loop from **detection to tolerance**:
//!
//! * the core takes an architectural checkpoint
//!   ([`emask_cpu::CpuCheckpoint`]) at a configurable cadence
//!   ([`CheckpointCadence`]);
//! * on a detected fault (dual-rail violation, memory fault, divide by
//!   zero, runaway PC) the run rolls back to the last checkpoint and
//!   re-executes — a transient fault has already been spent, so the replay
//!   is clean and the run completes with a bit-identical result;
//! * a *persistent* fault re-fires on every replay; after
//!   [`RecoveryPolicy::max_retries`] rollbacks the runner **zeroizes** the
//!   key material ([`zeroize_secrets`]) and aborts with
//!   [`crate::RunError::Zeroized`] — the standard smart-card response to
//!   an attack in progress (key destruction beats key disclosure).
//!
//! The entry point is [`crate::MaskedDes::encrypt_recovered`].

use emask_cpu::{CpuBackend, CpuErrorKind};
use emask_isa::Reg;

/// When the recovery runner takes a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCadence {
    /// Every `n` retired instructions (rounded up to the cycle at which
    /// the threshold is crossed). Smaller `n` means cheaper re-execution
    /// but more checkpoint overhead.
    Retired(u64),
    /// At every DES phase marker (initial permutation, each round, output
    /// permutation) — the natural algorithmic boundary: a detected fault
    /// re-executes at most one round.
    PhaseMarkers,
}

/// How a run responds to detected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Checkpoint cadence.
    pub cadence: CheckpointCadence,
    /// Total rollback budget for the whole run. A transient fault needs
    /// exactly one; a persistent fault burns the budget and triggers
    /// zeroization.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    /// Round-boundary checkpoints with a small retry budget — one round of
    /// re-execution per transient, zeroize after 8 strikes.
    fn default() -> Self {
        Self { cadence: CheckpointCadence::PhaseMarkers, max_retries: 8 }
    }
}

impl RecoveryPolicy {
    /// Checkpoint every `n` retired instructions instead of at phase
    /// markers.
    #[must_use]
    pub fn every_retired(n: u64) -> Self {
        Self { cadence: CheckpointCadence::Retired(n), ..Self::default() }
    }

    /// Replaces the rollback budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// What recovery did during one run — attached to the result so campaigns
/// can report detection→recovery coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Checkpoints taken (excluding the implicit one at cycle 0).
    pub checkpoints: u64,
    /// Rollback/re-execute events. Zero means the run was clean end to
    /// end; nonzero on a successful run means the fault was *recovered*.
    pub rollbacks: u32,
    /// Total dirty pages moved by checkpoint refreshes and restores — the
    /// measurable cost of the incremental memory scheme.
    pub pages_moved: u64,
}

/// Whether a fault of this kind is a candidate for rollback recovery.
///
/// Everything the architecture can *detect mid-run* is recoverable:
/// dual-rail violations (the paper's integrity signature), memory faults,
/// divide-by-zero, and a runaway PC. [`CpuErrorKind::CycleLimit`] is not —
/// the budget bounds total work including re-execution, so retrying a
/// timeout would retry forever.
#[must_use]
pub fn recoverable(kind: CpuErrorKind) -> bool {
    !matches!(kind, CpuErrorKind::CycleLimit { .. })
}

/// Destroys the key material in a compromised core: zeroes the 64-word
/// bit-per-word key array at `key_addr` and the entire register file.
/// Called when the rollback budget is exhausted, before the runner aborts
/// with [`crate::RunError::Zeroized`] — a persistent fault means an attack
/// in progress, and key destruction beats key disclosure. Works on any
/// [`CpuBackend`].
pub fn zeroize_secrets<B: CpuBackend>(cpu: &mut B, key_addr: u32) {
    for i in 0..64u32 {
        // The key array was poked through the same addresses at setup, so
        // these stores cannot fail; ignore errors anyway — zeroization
        // must never abort halfway.
        let _ = cpu.memory_mut().store(key_addr + 4 * i, 0);
    }
    for r in Reg::ALL {
        cpu.set_reg(r, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emask_cpu::memory::AccessError;
    use emask_cpu::{Bus, Cpu, Interpreter};
    use emask_isa::assemble;

    #[test]
    fn recoverable_kinds_exclude_only_cycle_limit() {
        assert!(recoverable(CpuErrorKind::DualRailViolation { bus: Bus::OperandA, agreeing: 1 }));
        assert!(recoverable(CpuErrorKind::Memory(AccessError::Unaligned { addr: 2 })));
        assert!(recoverable(CpuErrorKind::DivideByZero));
        assert!(recoverable(CpuErrorKind::PcOutOfRange { pc: 9 }));
        assert!(!recoverable(CpuErrorKind::CycleLimit { limit: 10 }));
    }

    #[test]
    fn zeroize_clears_key_words_and_registers_on_every_backend() {
        fn check<B: CpuBackend>() {
            let p = assemble(".data\nkey: .space 256\n.text\n halt\n").expect("asm");
            let mut cpu = B::load(&p);
            let key_addr = p.data_addr("key");
            for i in 0..64u32 {
                cpu.memory_mut().store(key_addr + 4 * i, 1).expect("store");
            }
            cpu.set_reg(Reg::T0, 0xDEAD_BEEF);
            zeroize_secrets(&mut cpu, key_addr);
            for i in 0..64u32 {
                assert_eq!(cpu.memory().load(key_addr + 4 * i).expect("load"), 0, "{}", B::NAME);
            }
            for r in Reg::ALL {
                assert_eq!(cpu.reg(r), 0, "{} {r}", B::NAME);
            }
        }
        check::<Cpu>();
        check::<Interpreter>();
    }

    #[test]
    fn policy_builders() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.cadence, CheckpointCadence::PhaseMarkers);
        let q = RecoveryPolicy::every_retired(100).with_max_retries(2);
        assert_eq!(q.cadence, CheckpointCadence::Retired(100));
        assert_eq!(q.max_retries, 2);
    }
}
