//! Integration tests for the telemetry layer: the observer-fed metrics
//! must agree with the trace algebra the rest of the evaluation uses, and
//! the exporters must produce byte-stable artifacts.

use emask_core::{
    ChromeTrace, CycleCsv, DesProgramSpec, EncryptionRun, MaskPolicy, MaskedDes, MetricsRegistry,
};
use emask_telemetry::{metrics_csv, summary};

const KEY: u64 = 0x1334_5779_9BBC_DFF1;
const PLAINTEXT: u64 = 0x0123_4567_89AB_CDEF;

/// One selectively-masked 1-round encryption, observed by `obs`.
fn observed_run<O: emask_core::RunObserver>(obs: &mut O) -> EncryptionRun {
    let des = MaskedDes::compile_spec(MaskPolicy::Selective, &DesProgramSpec { rounds: 1 })
        .expect("compile");
    des.encrypt_observed(PLAINTEXT, KEY, obs).expect("run")
}

/// FNV-1a 64 — the fingerprint that stands in for a multi-megabyte golden
/// file. Any byte change in an exporter's output changes it.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn metrics_phase_totals_match_phase_trace_sums() {
    let mut metrics = MetricsRegistry::new();
    let run = observed_run(&mut metrics);
    let snapshot = metrics.snapshot();

    // Every marker-derived phase of the run must appear in the snapshot
    // with exactly the energy the trace algebra assigns to its window.
    assert!(!run.markers.is_empty());
    for marker in &run.markers {
        let expected = run.phase_trace(marker.phase).expect("window").total_pj();
        let got = snapshot
            .phase(&marker.phase.to_string())
            .unwrap_or_else(|| panic!("phase {} missing from snapshot", marker.phase))
            .energy
            .total();
        assert!(
            (got - expected).abs() < 1e-6,
            "{}: metrics {got} pJ vs phase_trace {expected} pJ",
            marker.phase
        );
    }

    // The phases partition the run: startup + marked phases == whole trace.
    let phase_sum: f64 = snapshot.phases.iter().map(|p| p.energy.total()).sum();
    assert!((phase_sum - run.trace.total_pj()).abs() < 1e-6);
    assert!((snapshot.total_pj() - run.trace.total_pj()).abs() < 1e-6);
    assert_eq!(snapshot.cycles, run.stats.cycles);
    assert_eq!(snapshot.retired, run.stats.retired);
    assert_eq!(snapshot.phases[0].name, "startup");
}

#[test]
fn composed_observers_each_see_the_full_run() {
    let mut obs = (MetricsRegistry::new(), MetricsRegistry::new());
    let run = observed_run(&mut obs);
    let (a, b) = (obs.0.snapshot(), obs.1.snapshot());
    assert_eq!(a.cycles, run.stats.cycles);
    assert_eq!(a.cycles, b.cycles);
    assert!((a.total_pj() - b.total_pj()).abs() < 1e-12);
    assert_eq!(a.phases.len(), b.phases.len());
}

#[test]
fn chrome_trace_export_is_golden() {
    let mut chrome = ChromeTrace::new();
    let run = observed_run(&mut chrome);
    let json = chrome.render();

    // Structural checks: valid-looking trace-event JSON with one instant
    // event per phase marker.
    assert!(json.starts_with("{\"displayTimeUnit\""));
    assert!(json.ends_with("]}\n") || json.ends_with("]}"));
    assert_eq!(json.matches("\"ph\":\"i\"").count(), run.markers.len());
    assert_eq!(json.matches("\"thread_name\"").count(), 7);
    let braces: i64 = json
        .bytes()
        .map(|b| match b {
            b'{' => 1,
            b'}' => -1,
            _ => 0,
        })
        .sum();
    assert_eq!(braces, 0, "unbalanced braces");

    // Golden fingerprint of the byte-exact output for the fixed
    // key/plaintext 1-round run. If an intentional format change lands,
    // regenerate with: cargo run -p emask-bench --bin repro -- --rounds 1
    // --trace-out /tmp/t.json and re-fingerprint.
    assert_eq!(json.len(), 1_569_808, "trace JSON length drifted");
    assert_eq!(fnv64(json.as_bytes()), 0x6491_FE90_7741_551F, "trace JSON bytes drifted");
}

#[test]
fn cycle_csv_export_is_golden() {
    let mut csv = CycleCsv::new();
    let run = observed_run(&mut csv);
    let text = csv.into_csv();
    let mut lines = text.lines();

    assert_eq!(
        lines.next().unwrap(),
        "cycle,inst_bus,operand_latches,functional_units,result_bus,mem_bus,\
         writeback_latch,regfile,memory,clock,total,phase"
    );
    // One row per simulated cycle, all tagged with a phase.
    assert_eq!(text.lines().count() as u64, run.stats.cycles + 1);
    assert!(lines.next().unwrap().ends_with(",startup"));
    assert!(text.lines().last().unwrap().ends_with(",output permutation"));

    assert_eq!(text.len(), 2_292_294, "cycle CSV length drifted");
    assert_eq!(fnv64(text.as_bytes()), 0xF094_1726_B3BA_9BD6, "cycle CSV bytes drifted");
}

#[test]
fn metrics_csv_and_summary_render_the_run() {
    let mut metrics = MetricsRegistry::new();
    let run = observed_run(&mut metrics);
    let snapshot = metrics.snapshot();

    let csv = metrics_csv(&snapshot);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "phase,start_cycle,cycles,inst_bus,operand_latches,functional_units,\
         result_bus,mem_bus,writeback_latch,regfile,memory,clock,total_pj,\
         min_pj,max_pj,p50_pj,p95_pj,p99_pj"
    );
    // startup + IP + PC-1 + round 1 + FP, plus the trailing total row.
    assert_eq!(csv.lines().count(), 1 + 5 + 1);
    let total_row = csv.lines().last().unwrap();
    assert!(total_row.starts_with("total,0,"));
    // total_pj sits 5 fields before the end (the per-cycle distribution
    // columns trail it) and must reconcile with the trace algebra.
    let fields: Vec<&str> = total_row.split(',').collect();
    let total: f64 = fields[fields.len() - 6].parse().unwrap();
    assert!((total - run.trace.total_pj()).abs() < 1e-6);

    let report = summary(&snapshot);
    assert!(report.contains("run summary"));
    assert!(report.contains("instruction mix"));
    assert!(report.contains("round 1"));
}
