//! Property tests pinning the single-pass accumulators in
//! `emask_attack::online` to the batch statistics in
//! `emask_attack::stats`: for arbitrary trace sets — including the
//! single-row and constant-column degenerate shapes — Welford's streaming
//! mean/variance and the online Welch-*t* must agree with the two-pass
//! formulas to within 1e-9, and splitting a stream at any point and
//! merging the halves must agree with the unsplit stream.

use emask_attack::online::{OnlineWelch, Welford};
use emask_attack::stats::{mean_trace, variance_trace, welch_t, TraceMatrix};
use proptest::prelude::*;

const MAX_ROWS: usize = 30;
const MAX_WIDTH: usize = 12;

/// A non-empty trace set: `rows × width` values carved out of a flat pool
/// (the vendored proptest has no `prop_flat_map`, so dimensions and values
/// are drawn together and shaped here).
fn trace_set() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        1usize..MAX_ROWS,
        1usize..MAX_WIDTH,
        proptest::collection::vec(-1e3f64..1e3, MAX_ROWS * MAX_WIDTH..MAX_ROWS * MAX_WIDTH),
    )
        .prop_map(|(rows, width, pool)| shape(rows, width, &pool))
}

fn shape(rows: usize, width: usize, pool: &[f64]) -> Vec<Vec<f64>> {
    (0..rows).map(|r| pool[r * width..(r + 1) * width].to_vec()).collect()
}

/// A trace set where every row is the same — every column constant, the
/// zero-variance edge the `denom` guards exist for.
fn constant_trace_set() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..10, proptest::collection::vec(-50.0f64..50.0, 1..8))
        .prop_map(|(rows, row)| vec![row; rows])
}

fn matrix(rows: &[Vec<f64>]) -> TraceMatrix {
    rows.iter().cloned().collect()
}

fn stream(rows: &[Vec<f64>]) -> Welford {
    let mut w = Welford::new();
    for r in rows {
        w.push(r).expect("equal-width rows");
    }
    w
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what} width");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= 1e-9, "{what}[{i}]: online {x} vs batch {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn welford_agrees_with_batch(rows in trace_set()) {
        let w = stream(&rows);
        let m = matrix(&rows);
        assert_close(w.mean(), &mean_trace(&m), "mean");
        assert_close(&w.variance(), &variance_trace(&m), "variance");
    }

    #[test]
    fn welford_split_and_merge_agrees_with_one_stream(
        rows in trace_set(),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((rows.len() as f64) * cut_frac) as usize;
        let whole = stream(&rows);
        let mut merged = stream(&rows[..cut]);
        merged.merge(&stream(&rows[cut..])).expect("equal widths");
        prop_assert_eq!(merged.len(), whole.len());
        assert_close(merged.mean(), whole.mean(), "merged mean");
        assert_close(&merged.variance(), &whole.variance(), "merged variance");
    }

    #[test]
    fn single_row_has_exact_mean_and_zero_variance(
        row in proptest::collection::vec(-1e6f64..1e6, 1..16)
    ) {
        let w = stream(std::slice::from_ref(&row));
        prop_assert_eq!(w.len(), 1);
        assert_close(w.mean(), &row, "single-row mean");
        prop_assert!(w.variance().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_columns_have_zero_variance(rows in constant_trace_set()) {
        let w = stream(&rows);
        assert_close(w.mean(), &rows[0], "constant mean");
        prop_assert!(
            w.variance().iter().all(|&v| v.abs() <= 1e-9),
            "variance of identical rows: {:?}",
            w.variance()
        );
    }

    #[test]
    fn online_welch_t_agrees_with_batch(
        rows0 in 1usize..MAX_ROWS,
        rows1 in 1usize..MAX_ROWS,
        width in 1usize..MAX_WIDTH,
        pool0 in proptest::collection::vec(-1e3f64..1e3, MAX_ROWS * MAX_WIDTH..MAX_ROWS * MAX_WIDTH),
        pool1 in proptest::collection::vec(-1e3f64..1e3, MAX_ROWS * MAX_WIDTH..MAX_ROWS * MAX_WIDTH),
    ) {
        // Both groups share a width — the only shape the accumulators are
        // for (the batch statistic zero-pads mismatches; that path is
        // covered by the `_checked` unit tests).
        let g0 = shape(rows0, width, &pool0);
        let g1 = shape(rows1, width, &pool1);
        let mut ow = OnlineWelch::new();
        for r in &g0 {
            ow.g0.push(r).expect("aligned");
        }
        for r in &g1 {
            ow.g1.push(r).expect("aligned");
        }
        assert_close(&ow.welch_t(), &welch_t(&matrix(&g0), &matrix(&g1)), "welch_t");
    }

    #[test]
    fn online_welch_t_on_constant_groups_is_zero(
        g in constant_trace_set(),
        offset in -10.0f64..10.0,
    ) {
        // Both groups constant (possibly different constants): Welford
        // accumulates an *exactly* zero variance for identical rows (each
        // update's delta is 0), so the vanishing-deviation guard fires and
        // the statistic is 0 — never NaN/inf. (The batch two-pass formula
        // can leave ~1e-28 rounding residue in the variance here and blow
        // it up into an astronomical t; the streaming path is the more
        // accurate of the two on this edge, so no batch comparison.)
        let shifted: Vec<Vec<f64>> =
            g.iter().map(|r| r.iter().map(|v| v + offset).collect()).collect();
        let mut ow = OnlineWelch::new();
        for r in &g {
            ow.g0.push(r).expect("aligned");
        }
        for r in &shifted {
            ow.g1.push(r).expect("aligned");
        }
        let online = ow.welch_t();
        prop_assert!(online.iter().all(|&t| t == 0.0), "constant groups: {online:?}");
    }
}
