//! Single-pass (online) attack statistics.
//!
//! The batch pipeline in [`crate::stats`] buffers every trace in a
//! [`crate::stats::TraceMatrix`] — O(samples × trace_len) memory — and
//! then re-walks the whole set per subkey guess. Everything the attacks
//! actually need (pointwise means, variances, difference-of-means,
//! Welch's *t*, Pearson correlation) is expressible as running sums, so
//! this module provides streaming accumulators that see each trace
//! **once** and then drop it:
//!
//! * [`Welford`] — pointwise mean/variance via Welford's recurrence, with
//!   the Chan et al. pairwise `merge` for combining per-thread partials;
//! * [`OnlineWelch`] — a two-group [`Welford`] pair yielding the TVLA
//!   Welch-*t* statistic;
//! * [`OnlineDpa`] — the per-guess difference-of-means engine behind
//!   [`crate::dpa`], at O(guesses × trace_len) memory independent of the
//!   sample count;
//! * [`OnlineCpa`] — the per-guess Pearson-correlation sums behind
//!   [`crate::cpa`], same memory bound.
//!
//! Every accumulator supports `merge`, and merging is deterministic: the
//! parallel drivers in `emask-par` fold shard accumulators in fixed shard
//! order, so results are bit-identical for any worker count.

use crate::cpa::CpaResult;
use crate::dpa::{result_from_peaks, sbox_chunk, DpaResult};
use crate::stats::{peak, StatsError};
use emask_des::cipher::sbox_lookup;

/// Pointwise streaming mean/variance over equal-length traces
/// (Welford's algorithm, one accumulator per cycle).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl Welford {
    /// An empty accumulator; the first pushed trace sets the width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of traces folded in.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when nothing was folded in yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Trace width (0 until the first push).
    pub fn width(&self) -> usize {
        self.mean.len()
    }

    /// Folds one trace in.
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when the trace length differs from
    /// the established width; the accumulator is left unchanged.
    pub fn push(&mut self, trace: &[f64]) -> Result<(), StatsError> {
        if self.n == 0 {
            self.mean = vec![0.0; trace.len()];
            self.m2 = vec![0.0; trace.len()];
        } else if trace.len() != self.mean.len() {
            return Err(StatsError::WidthMismatch { expected: self.mean.len(), got: trace.len() });
        }
        self.n += 1;
        let n = self.n as f64;
        for ((mean, m2), &v) in self.mean.iter_mut().zip(&mut self.m2).zip(trace) {
            let d = v - *mean;
            *mean += d / n;
            *m2 += d * (v - *mean);
        }
        Ok(())
    }

    /// Absorbs another accumulator (Chan et al. pairwise combination).
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when both accumulators are non-empty
    /// with different widths.
    pub fn merge(&mut self, other: &Welford) -> Result<(), StatsError> {
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            *self = other.clone();
            return Ok(());
        }
        if self.mean.len() != other.mean.len() {
            return Err(StatsError::WidthMismatch {
                expected: self.mean.len(),
                got: other.mean.len(),
            });
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        for i in 0..self.mean.len() {
            let delta = other.mean[i] - self.mean[i];
            self.mean[i] += delta * nb / n;
            self.m2[i] += other.m2[i] + delta * delta * na * nb / n;
        }
        self.n += other.n;
        Ok(())
    }

    /// The pointwise mean (empty before the first push).
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The pointwise population variance (matches
    /// [`crate::stats::variance_trace`]; empty before the first push).
    pub fn variance(&self) -> Vec<f64> {
        if self.n == 0 {
            return Vec::new();
        }
        let n = self.n as f64;
        self.m2.iter().map(|m2| m2 / n).collect()
    }
}

/// Streaming two-group Welch-*t*: the online equivalent of
/// [`crate::stats::welch_t`] for TVLA-style fixed-vs-random assessments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineWelch {
    /// Group 0 (e.g. the fixed-key traces).
    pub g0: Welford,
    /// Group 1 (e.g. the random-key traces).
    pub g1: Welford,
}

impl OnlineWelch {
    /// An empty two-group accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs another accumulator, group by group.
    ///
    /// # Errors
    ///
    /// As for [`Welford::merge`].
    pub fn merge(&mut self, other: &OnlineWelch) -> Result<(), StatsError> {
        self.g0.merge(&other.g0)?;
        self.g1.merge(&other.g1)
    }

    /// The pointwise Welch *t* statistic, with the same guards as the
    /// batch [`crate::stats::welch_t`]: zeros unless both groups have at
    /// least two traces, zero where the pooled deviation vanishes.
    pub fn welch_t(&self) -> Vec<f64> {
        if self.g0.len() < 2 || self.g1.len() < 2 {
            return vec![0.0; self.g0.width().max(self.g1.width())];
        }
        let (n0, n1) = (self.g0.len() as f64, self.g1.len() as f64);
        let v0 = self.g0.variance();
        let v1 = self.g1.variance();
        self.g0
            .mean()
            .iter()
            .zip(self.g1.mean())
            .zip(v0.iter().zip(&v1))
            .map(|((mu0, mu1), (s0, s1))| {
                let denom = (s0 / n0 + s1 / n1).sqrt();
                if denom < 1e-15 {
                    0.0
                } else {
                    (mu1 - mu0) / denom
                }
            })
            .collect()
    }
}

/// Single-pass difference-of-means DPA over one S-box.
///
/// For every trace, the selection bit of each of the 64 subkey guesses is
/// computed once (one S-box lookup per guess) and the trace is folded
/// into that guess's group-1 sum; the group-0 mean falls out of the
/// shared total sum. Memory is O(bits × guesses × trace_len) — one sum
/// vector per (bit, guess) plus the total — and **independent of the
/// sample count**, unlike the batch [`crate::dpa::analyze_bit`] path that
/// retains the full trace matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineDpa {
    sbox: usize,
    /// The bit whose per-guess peak cycles the result reports (matches
    /// the batch multibit convention).
    report_bit: usize,
    /// The analyzed output bits: `[report_bit]` or all four.
    bits: Vec<usize>,
    n: u64,
    /// Sum over *all* traces (shared by every guess's group 0).
    total: Vec<f64>,
    /// Per (bit, guess): group-1 trace count, row-major `[bit][guess]`.
    n1: Vec<u64>,
    /// Per (bit, guess): group-1 sum vector, row-major `[bit][guess]`.
    sum1: Vec<Vec<f64>>,
}

impl OnlineDpa {
    /// Single-bit DPA on output `bit` of `sbox` — the streaming
    /// equivalent of [`crate::dpa::recover_subkey`]'s analysis.
    ///
    /// # Panics
    ///
    /// Panics if `sbox >= 8` or `bit >= 4`.
    pub fn single(sbox: usize, bit: usize) -> Self {
        Self::with_bits(sbox, bit, vec![bit])
    }

    /// Multi-bit DPA aggregating all four output bits of `sbox`, with
    /// peak cycles reported for `report_bit` — the streaming equivalent
    /// of [`crate::dpa::recover_subkey_multibit`]'s analysis.
    ///
    /// # Panics
    ///
    /// Panics if `sbox >= 8` or `report_bit >= 4`.
    pub fn multibit(sbox: usize, report_bit: usize) -> Self {
        Self::with_bits(sbox, report_bit, vec![0, 1, 2, 3])
    }

    fn with_bits(sbox: usize, report_bit: usize, bits: Vec<usize>) -> Self {
        assert!(sbox < 8 && report_bit < 4);
        let slots = bits.len() * 64;
        OnlineDpa {
            sbox,
            report_bit,
            bits,
            n: 0,
            total: Vec::new(),
            n1: vec![0; slots],
            sum1: vec![Vec::new(); slots],
        }
    }

    /// Number of traces folded in.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when nothing was folded in yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Folds one `(plaintext, trace)` observation in.
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when the trace length differs from
    /// the established width; the accumulator is left unchanged.
    pub fn push(&mut self, plaintext: u64, trace: &[f64]) -> Result<(), StatsError> {
        if self.n == 0 {
            self.total = vec![0.0; trace.len()];
        } else if trace.len() != self.total.len() {
            return Err(StatsError::WidthMismatch { expected: self.total.len(), got: trace.len() });
        }
        self.n += 1;
        for (t, &v) in self.total.iter_mut().zip(trace) {
            *t += v;
        }
        let chunk = sbox_chunk(plaintext, self.sbox);
        for guess in 0..64u8 {
            let s_out = sbox_lookup(self.sbox, chunk ^ guess);
            for (bi, &bit) in self.bits.iter().enumerate() {
                if (s_out >> (3 - bit)) & 1 == 1 {
                    let slot = bi * 64 + guess as usize;
                    self.n1[slot] += 1;
                    let sum = &mut self.sum1[slot];
                    if sum.is_empty() {
                        *sum = trace.to_vec();
                    } else {
                        for (s, &v) in sum.iter_mut().zip(trace) {
                            *s += v;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Absorbs another accumulator of the same configuration.
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when both accumulators are non-empty
    /// with different trace widths.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators target different S-boxes or bits —
    /// that is a driver bug, not a data condition.
    pub fn merge(&mut self, other: &OnlineDpa) -> Result<(), StatsError> {
        assert!(
            self.sbox == other.sbox && self.bits == other.bits,
            "merging differently-configured DPA accumulators"
        );
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            *self = other.clone();
            return Ok(());
        }
        if self.total.len() != other.total.len() {
            return Err(StatsError::WidthMismatch {
                expected: self.total.len(),
                got: other.total.len(),
            });
        }
        self.n += other.n;
        for (t, &v) in self.total.iter_mut().zip(&other.total) {
            *t += v;
        }
        for slot in 0..self.n1.len() {
            self.n1[slot] += other.n1[slot];
            if other.sum1[slot].is_empty() {
                continue;
            }
            if self.sum1[slot].is_empty() {
                self.sum1[slot] = other.sum1[slot].clone();
            } else {
                for (s, &v) in self.sum1[slot].iter_mut().zip(&other.sum1[slot]) {
                    *s += v;
                }
            }
        }
        Ok(())
    }

    /// The per-guess difference-of-means trace for one analyzed bit slot,
    /// mirroring the batch semantics: zeros when either group is empty.
    fn dom(&self, slot: usize) -> Vec<f64> {
        let n1 = self.n1[slot];
        let n0 = self.n - n1;
        if n1 == 0 || n0 == 0 {
            return vec![0.0; self.total.len()];
        }
        let sum1 = &self.sum1[slot];
        let (n0, n1) = (n0 as f64, n1 as f64);
        self.total.iter().zip(sum1).map(|(&tot, &s1)| s1 / n1 - (tot - s1) / n0).collect()
    }

    /// Finalizes the accumulated statistics into a [`DpaResult`]
    /// (per-guess peaks, best guess, margin).
    pub fn result(&self) -> DpaResult {
        let mut peaks = [0.0f64; 64];
        let mut peak_cycles = [0usize; 64];
        for (bi, &bit) in self.bits.iter().enumerate() {
            for guess in 0..64 {
                let (cycle, magnitude) = peak(&self.dom(bi * 64 + guess));
                peaks[guess] += magnitude;
                if bit == self.report_bit {
                    peak_cycles[guess] = cycle;
                }
            }
        }
        result_from_peaks(peaks, peak_cycles)
    }
}

/// Single-pass Hamming-weight CPA over one S-box.
///
/// Keeps the per-cycle trace sums shared across guesses and one
/// cross-moment vector per guess — O(guesses × trace_len), independent of
/// the sample count. Finalizing evaluates the same Pearson-correlation
/// formula as the batch [`crate::cpa::cpa_recover_subkey`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineCpa {
    sbox: usize,
    n: u64,
    sum_t: Vec<f64>,
    sum_t2: Vec<f64>,
    /// Per guess: Σh, Σh², Σh·t (the model moments and cross-moments).
    sum_h: [f64; 64],
    sum_h2: [f64; 64],
    sum_ht: Vec<Vec<f64>>,
}

impl OnlineCpa {
    /// An empty accumulator targeting `sbox`.
    ///
    /// # Panics
    ///
    /// Panics if `sbox >= 8`.
    pub fn new(sbox: usize) -> Self {
        assert!(sbox < 8);
        OnlineCpa {
            sbox,
            n: 0,
            sum_t: Vec::new(),
            sum_t2: Vec::new(),
            sum_h: [0.0; 64],
            sum_h2: [0.0; 64],
            sum_ht: vec![Vec::new(); 64],
        }
    }

    /// Number of traces folded in.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when nothing was folded in yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Folds one `(plaintext, trace)` observation in.
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when the trace length differs from
    /// the established width; the accumulator is left unchanged.
    pub fn push(&mut self, plaintext: u64, trace: &[f64]) -> Result<(), StatsError> {
        if self.n == 0 {
            self.sum_t = vec![0.0; trace.len()];
            self.sum_t2 = vec![0.0; trace.len()];
            for s in &mut self.sum_ht {
                *s = vec![0.0; trace.len()];
            }
        } else if trace.len() != self.sum_t.len() {
            return Err(StatsError::WidthMismatch { expected: self.sum_t.len(), got: trace.len() });
        }
        self.n += 1;
        for ((st, st2), &v) in self.sum_t.iter_mut().zip(&mut self.sum_t2).zip(trace) {
            *st += v;
            *st2 += v * v;
        }
        let chunk = sbox_chunk(plaintext, self.sbox);
        for guess in 0..64u8 {
            let h = f64::from(sbox_lookup(self.sbox, chunk ^ guess).count_ones());
            let g = guess as usize;
            self.sum_h[g] += h;
            self.sum_h2[g] += h * h;
            if h != 0.0 {
                for (s, &v) in self.sum_ht[g].iter_mut().zip(trace) {
                    *s += h * v;
                }
            }
        }
        Ok(())
    }

    /// Absorbs another accumulator of the same configuration.
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when both accumulators are non-empty
    /// with different trace widths.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators target different S-boxes.
    pub fn merge(&mut self, other: &OnlineCpa) -> Result<(), StatsError> {
        assert!(self.sbox == other.sbox, "merging differently-configured CPA accumulators");
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            *self = other.clone();
            return Ok(());
        }
        if self.sum_t.len() != other.sum_t.len() {
            return Err(StatsError::WidthMismatch {
                expected: self.sum_t.len(),
                got: other.sum_t.len(),
            });
        }
        self.n += other.n;
        for (s, &v) in self.sum_t.iter_mut().zip(&other.sum_t) {
            *s += v;
        }
        for (s, &v) in self.sum_t2.iter_mut().zip(&other.sum_t2) {
            *s += v;
        }
        for g in 0..64 {
            self.sum_h[g] += other.sum_h[g];
            self.sum_h2[g] += other.sum_h2[g];
            for (s, &v) in self.sum_ht[g].iter_mut().zip(&other.sum_ht[g]) {
                *s += v;
            }
        }
        Ok(())
    }

    /// Finalizes the accumulated sums into a [`CpaResult`] via the same
    /// Pearson formula and guards as the batch path.
    pub fn result(&self) -> CpaResult {
        let n = self.n as f64;
        let width = self.sum_t.len();
        let mut peaks = [0.0f64; 64];
        let mut peak_cycles = [0usize; 64];
        for g in 0..64 {
            let var_h = self.sum_h2[g] - self.sum_h[g] * self.sum_h[g] / n;
            if var_h < 1e-12 {
                continue; // degenerate model (all predictions equal)
            }
            let mut best = (0usize, 0.0f64);
            for j in 0..width {
                let cov = self.sum_ht[g][j] - self.sum_h[g] * self.sum_t[j] / n;
                let var_t = self.sum_t2[j] - self.sum_t[j] * self.sum_t[j] / n;
                if var_t < 1e-12 {
                    continue;
                }
                let r = (cov / (var_h * var_t).sqrt()).abs();
                if r > best.1 {
                    best = (j, r);
                }
            }
            peaks[g] = best.1;
            peak_cycles[g] = best.0;
        }
        let best_guess = (0..64).max_by(|&a, &b| peaks[a].total_cmp(&peaks[b])).unwrap_or(0) as u8;
        let best = peaks[best_guess as usize];
        let second = peaks
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != best_guess as usize)
            .map(|(_, &v)| v)
            .fold(0.0f64, f64::max);
        let margin = if second > 1e-12 {
            best / second
        } else if best > 1e-12 {
            f64::INFINITY
        } else {
            1.0
        };
        CpaResult { peaks, peak_cycles, best_guess, margin }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::stats::{mean_trace, variance_trace, welch_t, TraceMatrix};

    fn matrix(rows: &[&[f64]]) -> TraceMatrix {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn welford_matches_batch_mean_and_variance() {
        let rows: Vec<Vec<f64>> =
            vec![vec![1.0, -2.0, 3.5], vec![0.5, 7.0, -1.0], vec![2.5, 0.0, 4.0]];
        let batch: TraceMatrix = rows.iter().cloned().collect();
        let mut w = Welford::new();
        for r in &rows {
            w.push(r).unwrap();
        }
        assert_eq!(w.len(), 3);
        assert!(close(w.mean(), &mean_trace(&batch), 1e-12));
        assert!(close(&w.variance(), &variance_trace(&batch), 1e-12));
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64 * 0.1]).collect();
        let mut whole = Welford::new();
        for r in &rows {
            whole.push(r).unwrap();
        }
        let (mut a, mut b) = (Welford::new(), Welford::new());
        for r in &rows[..3] {
            a.push(r).unwrap();
        }
        for r in &rows[3..] {
            b.push(r).unwrap();
        }
        a.merge(&b).unwrap();
        assert_eq!(a.len(), whole.len());
        assert!(close(a.mean(), whole.mean(), 1e-9));
        assert!(close(&a.variance(), &whole.variance(), 1e-9));
        // Merging into/from empty is the identity.
        let mut empty = Welford::new();
        empty.merge(&whole).unwrap();
        assert_eq!(empty, whole);
        whole.merge(&Welford::new()).unwrap();
        assert_eq!(empty, whole);
    }

    #[test]
    fn welford_width_mismatch_is_typed() {
        let mut w = Welford::new();
        w.push(&[1.0, 2.0]).unwrap();
        assert_eq!(w.push(&[1.0]), Err(StatsError::WidthMismatch { expected: 2, got: 1 }));
        let mut other = Welford::new();
        other.push(&[1.0]).unwrap();
        assert!(w.merge(&other).is_err());
    }

    #[test]
    fn online_welch_matches_batch() {
        let g0 = matrix(&[&[0.0, 1.0], &[0.1, 2.0], &[-0.1, 3.0], &[0.05, 4.0]]);
        let g1 = matrix(&[&[10.0, 2.0], &[10.1, 3.0], &[9.9, 1.0], &[10.05, 4.0]]);
        let mut ow = OnlineWelch::new();
        for r in g0.rows() {
            ow.g0.push(r).unwrap();
        }
        for r in g1.rows() {
            ow.g1.push(r).unwrap();
        }
        assert!(close(&ow.welch_t(), &welch_t(&g0, &g1), 1e-9));
    }

    #[test]
    fn online_welch_small_group_guard_matches_batch() {
        let mut ow = OnlineWelch::new();
        ow.g0.push(&[1.0, 2.0]).unwrap();
        ow.g1.push(&[3.0, 4.0]).unwrap();
        assert_eq!(ow.welch_t(), vec![0.0, 0.0]);
    }

    #[test]
    fn online_dpa_single_bit_matches_batch_analysis() {
        use crate::dpa::{analyze_bit, selection_bit};
        let plaintexts: Vec<u64> =
            (0..40u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let traces: Vec<Vec<f64>> = plaintexts
            .iter()
            .map(|&p| {
                let b = selection_bit(p, 0x2A, 2, 1);
                vec![(p % 11) as f64, 100.0 + if b { 7.0 } else { 0.0 }]
            })
            .collect();
        let (peaks, cycles) = analyze_bit(&plaintexts, &traces, 2, 1);
        let mut acc = OnlineDpa::single(2, 1);
        for (p, t) in plaintexts.iter().zip(&traces) {
            acc.push(*p, t).unwrap();
        }
        let r = acc.result();
        for g in 0..64 {
            assert!((r.peaks[g] - peaks[g]).abs() < 1e-9, "guess {g}");
            assert_eq!(r.peak_cycles[g], cycles[g], "guess {g}");
        }
    }

    #[test]
    fn online_dpa_merge_is_order_of_shards() {
        let plaintexts: Vec<u64> =
            (0..30u64).map(|i| i.wrapping_mul(0xABCD_EF12_3456_789B)).collect();
        let trace = |p: u64| vec![(p % 13) as f64, (p % 7) as f64];
        let mut whole = OnlineDpa::multibit(0, 0);
        for &p in &plaintexts {
            whole.push(p, &trace(p)).unwrap();
        }
        let (mut a, mut b) = (OnlineDpa::multibit(0, 0), OnlineDpa::multibit(0, 0));
        for &p in &plaintexts[..11] {
            a.push(p, &trace(p)).unwrap();
        }
        for &p in &plaintexts[11..] {
            b.push(p, &trace(p)).unwrap();
        }
        a.merge(&b).unwrap();
        assert_eq!(a.len(), whole.len());
        let (ra, rw) = (a.result(), whole.result());
        assert_eq!(ra.best_guess, rw.best_guess);
        for g in 0..64 {
            assert!((ra.peaks[g] - rw.peaks[g]).abs() < 1e-9);
        }
    }

    #[test]
    fn online_cpa_matches_batch_result() {
        use crate::cpa::{cpa_recover_subkey, CpaConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // The batch entry draws its own plaintexts from the config seed;
        // replay the same draw here so both paths see identical data.
        let cfg = CpaConfig { samples: 64, sbox: 3, seed: 99 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let plaintexts: Vec<u64> = (0..cfg.samples).map(|_| rng.gen()).collect();
        let oracle = |p: u64| {
            let chunk = sbox_chunk(p, 3);
            let h = f64::from(sbox_lookup(3, chunk ^ 0x15).count_ones());
            vec![50.0 + (p % 9) as f64, 100.0 + 4.0 * h]
        };
        let batch = cpa_recover_subkey(oracle, &cfg);
        let mut acc = OnlineCpa::new(3);
        for &p in &plaintexts {
            acc.push(p, &oracle(p)).unwrap();
        }
        let online = acc.result();
        assert_eq!(online.best_guess, batch.best_guess);
        for g in 0..64 {
            assert!((online.peaks[g] - batch.peaks[g]).abs() < 1e-9, "guess {g}");
            assert_eq!(online.peak_cycles[g], batch.peak_cycles[g], "guess {g}");
        }
        assert!((online.margin - batch.margin).abs() < 1e-9);
    }

    #[test]
    fn online_accumulators_report_width_mismatches() {
        let mut dpa = OnlineDpa::single(0, 0);
        dpa.push(1, &[1.0, 2.0]).unwrap();
        assert_eq!(dpa.push(2, &[1.0]), Err(StatsError::WidthMismatch { expected: 2, got: 1 }));
        let mut cpa = OnlineCpa::new(0);
        cpa.push(1, &[1.0, 2.0]).unwrap();
        assert_eq!(cpa.push(2, &[1.0]), Err(StatsError::WidthMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn empty_accumulators_finalize_calmly() {
        let dpa = OnlineDpa::multibit(0, 0);
        assert!(dpa.is_empty());
        let r = dpa.result();
        assert!(r.peaks.iter().all(|&p| p == 0.0));
        assert!((r.margin - 1.0).abs() < 1e-12);
        let cpa = OnlineCpa::new(0);
        assert!(cpa.is_empty());
        let r = cpa.result();
        assert!(r.peaks.iter().all(|&p| p == 0.0));
    }
}
