//! Simple power analysis: reading program structure off a single trace.
//!
//! Figure 6 of the paper shows that a single energy trace of the original
//! DES "reveal\[s\] clearly the 16 rounds of operation". This module
//! implements that observation as an algorithm: bucket the trace, find the
//! dominant repetition period by autocorrelation, and count the periodic
//! peaks.

use std::fmt;

/// What SPA saw in a single trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaReport {
    /// The number of repeated segments detected (16 for unmasked DES).
    pub detected_rounds: usize,
    /// The repetition period in buckets.
    pub period: usize,
    /// The normalized autocorrelation score of the detected period
    /// (0 = structureless, → 1 = perfectly periodic).
    pub score: f64,
}

impl fmt::Display for SpaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPA: {} rounds at period {} (score {:.2})",
            self.detected_rounds, self.period, self.score
        )
    }
}

/// Detects repeated round structure in a per-cycle trace.
///
/// `bucket` controls smoothing (the paper plots per-100-cycle buckets);
/// `min_rounds..=max_rounds` bounds the candidate round counts considered.
///
/// # Panics
///
/// Panics if `bucket` is 0 or `min_rounds` is 0 or greater than
/// `max_rounds`.
pub fn detect_rounds(
    trace: &[f64],
    bucket: usize,
    min_rounds: usize,
    max_rounds: usize,
) -> SpaReport {
    assert!(bucket > 0, "bucket must be positive");
    assert!(min_rounds > 0 && min_rounds <= max_rounds, "bad round bounds");
    let b: Vec<f64> =
        trace.chunks(bucket).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect();
    let n = b.len();
    if n < 2 * min_rounds {
        return SpaReport { detected_rounds: 0, period: 0, score: 0.0 };
    }
    let mean = b.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = b.iter().map(|v| v - mean).collect();
    let denom: f64 = centered.iter().map(|v| v * v).sum();
    if denom < 1e-12 {
        // A perfectly flat trace has no structure — the masked ideal.
        return SpaReport { detected_rounds: 0, period: 0, score: 0.0 };
    }
    // For each candidate round count r, the candidate period is n / r;
    // score it by autocorrelation at that lag.
    let mut best = SpaReport { detected_rounds: 0, period: 0, score: 0.0 };
    for rounds in min_rounds..=max_rounds {
        let period = n / rounds;
        if period < 2 {
            continue;
        }
        let mut num = 0.0;
        for i in 0..n - period {
            num += centered[i] * centered[i + period];
        }
        let score = num / denom;
        if score > best.score {
            best = SpaReport { detected_rounds: rounds, period, score };
        }
    }
    best
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// A synthetic "DES-like" trace: `rounds` repetitions of a distinctive
    /// hump over a noise floor.
    fn synthetic(rounds: usize, cycles_per_round: usize) -> Vec<f64> {
        let mut t = Vec::new();
        for _ in 0..rounds {
            for c in 0..cycles_per_round {
                let phase = c as f64 / cycles_per_round as f64;
                t.push(160.0 + 40.0 * (phase * std::f64::consts::TAU).sin());
            }
        }
        t
    }

    #[test]
    fn sixteen_rounds_detected() {
        let t = synthetic(16, 400);
        let r = detect_rounds(&t, 10, 2, 32);
        assert_eq!(r.detected_rounds, 16, "{r}");
        assert!(r.score > 0.8);
    }

    #[test]
    fn eight_rounds_detected() {
        let t = synthetic(8, 500);
        let r = detect_rounds(&t, 10, 2, 32);
        assert_eq!(r.detected_rounds, 8);
    }

    #[test]
    fn flat_trace_shows_nothing() {
        let t = vec![165.0; 6400];
        let r = detect_rounds(&t, 10, 2, 32);
        assert_eq!(r.detected_rounds, 0);
        assert_eq!(r.score, 0.0);
    }

    #[test]
    fn white_noise_scores_low() {
        // Deterministic pseudo-noise.
        let mut x = 0x9E3779B9u32;
        let t: Vec<f64> = (0..6400)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                160.0 + (x % 100) as f64 / 10.0
            })
            .collect();
        let r = detect_rounds(&t, 10, 14, 18);
        assert!(r.score < 0.5, "noise scored {}", r.score);
    }

    #[test]
    fn short_trace_reports_nothing() {
        let r = detect_rounds(&[1.0, 2.0, 3.0], 1, 16, 16);
        assert_eq!(r.detected_rounds, 0);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_bucket_panics() {
        detect_rounds(&[1.0], 0, 2, 4);
    }

    #[test]
    fn report_displays() {
        let r = SpaReport { detected_rounds: 16, period: 40, score: 0.93 };
        assert!(r.to_string().contains("16 rounds"));
    }
}
