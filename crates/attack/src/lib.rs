//! # emask-attack — the power-analysis attack suite
//!
//! The adversary's half of the evaluation: simple power analysis (SPA) and
//! differential power analysis (DPA) over per-cycle energy traces, built to
//! the descriptions in Kocher et al. and Goubin & Patarin that the paper
//! cites. These attacks are what the secure instructions must defeat —
//! the tests and benches run them against both unmasked and masked traces
//! and verify that the key falls out of the former and not the latter.
//!
//! * [`stats`] — trace statistics: means, difference-of-means, Welch's
//!   *t*, and the trace-matrix bookkeeping;
//! * [`spa`] — round-structure detection: the Figure 6 observation that
//!   "the energy profile can show what operations are being performed";
//! * [`dpa`] — the §1 attack: partition a sample of traces by a predicted
//!   intermediate bit (a round-1 S-box output bit under a 6-bit subkey
//!   guess) and look for a difference-of-means peak;
//! * [`cpa`] — correlation power analysis (an extension beyond the paper):
//!   Pearson correlation against a Hamming-weight leakage model, the
//!   stronger attack later literature standardized on.
//!
//! * [`online`] — single-pass (streaming) equivalents of the batch
//!   statistics: Welford mean/variance, online Welch-*t*, and
//!   O(guesses × trace_len) DPA/CPA accumulators that never retain the
//!   trace set — the memory- and merge-friendly core of the parallel
//!   entry points.
//!
//! The attack code is generic over a *trace oracle* — any
//! `FnMut(u64 plaintext) -> Vec<f64>` — so it runs identically against
//! the cycle-accurate simulator and against synthetic leakage models used
//! in unit tests. The `_par` entry points ([`recover_subkey_par`],
//! [`cpa_recover_subkey_par`]) additionally require the oracle to be
//! `Fn + Sync` and shard trace acquisition across an `emask-par` worker
//! pool; their results are bit-identical for any `--jobs` count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod cpa;
pub mod dpa;
pub mod online;
pub mod progress;
pub mod spa;
pub mod stats;

pub use cpa::{
    cpa_recover_subkey, cpa_recover_subkey_par, cpa_recover_subkey_par_cancellable,
    cpa_recover_subkey_with, predicted_hamming_weight, CpaConfig, CpaResult,
};
pub use dpa::{
    analyze_bit, collect_traces, collect_traces_par, collect_traces_with, plaintext_for,
    recover_subkey, recover_subkey_multibit, recover_subkey_multibit_par,
    recover_subkey_multibit_par_snapshotted, recover_subkey_multibit_par_snapshotted_cancellable,
    recover_subkey_multibit_with, recover_subkey_par, recover_subkey_with, sbox_chunk,
    selection_bit, DpaConfig, DpaResult,
};
pub use online::{OnlineCpa, OnlineDpa, OnlineWelch, Welford};
pub use progress::{guess_ranks, AttackProgress, ProgressCounters};
pub use spa::{detect_rounds, SpaReport};
pub use stats::{
    difference_of_means, difference_of_means_checked, mean_trace, welch_t, welch_t_checked,
    StatsError, TraceMatrix,
};
