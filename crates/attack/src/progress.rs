//! Attack-campaign progress instrumentation.
//!
//! Long campaigns against the cycle-accurate simulator spend minutes
//! collecting traces; an [`AttackProgress`] observer surfaces what is
//! happening: every collected trace, every analyzed subkey guess, and the
//! final verdict. `()` is the free no-op observer, and
//! [`ProgressCounters`] is a ready-made accumulator with the
//! correlation-convergence bookkeeping the benches report.

/// Callbacks fired during a DPA/CPA campaign. All defaults are no-ops.
pub trait AttackProgress {
    /// Trace `index` of `total` was collected (`len` samples long).
    fn on_trace(&mut self, index: usize, total: usize, len: usize) {
        let _ = (index, total, len);
    }

    /// Subkey guess `guess` was analyzed; its statistic peaked at `peak`
    /// in cycle `cycle`.
    fn on_guess(&mut self, guess: u8, peak: f64, cycle: usize) {
        let _ = (guess, peak, cycle);
    }

    /// The campaign finished with `best_guess` at `margin` over the
    /// runner-up.
    fn on_complete(&mut self, best_guess: u8, margin: f64) {
        let _ = (best_guess, margin);
    }
}

/// The no-op progress observer.
impl AttackProgress for () {}

impl<P: AttackProgress + ?Sized> AttackProgress for &mut P {
    fn on_trace(&mut self, index: usize, total: usize, len: usize) {
        (**self).on_trace(index, total, len);
    }
    fn on_guess(&mut self, guess: u8, peak: f64, cycle: usize) {
        (**self).on_guess(guess, peak, cycle);
    }
    fn on_complete(&mut self, best_guess: u8, margin: f64) {
        (**self).on_complete(best_guess, margin);
    }
}

/// Counter-based progress accumulator with convergence tracking.
///
/// Besides raw counts, it records how the *leading* guess changed as
/// guesses were analyzed: [`ProgressCounters::lead_changes`] counts how
/// often a new guess took the lead. A campaign whose statistic genuinely
/// singles out one key settles quickly; one chasing noise keeps swapping
/// leaders — a cheap convergence diagnostic for masked targets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgressCounters {
    /// Traces collected so far.
    pub traces: usize,
    /// Total samples across all collected traces.
    pub trace_samples: usize,
    /// Guesses analyzed so far.
    pub guesses: usize,
    /// Times the running-best guess changed hands (first guess included).
    pub lead_changes: usize,
    /// The current leading guess and its peak statistic.
    pub leader: Option<(u8, f64)>,
    /// Final `(best_guess, margin)` once the campaign completed.
    pub outcome: Option<(u8, f64)>,
}

impl ProgressCounters {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Ranks the 64 subkey guesses by their peak statistic: `ranks[g]` is the
/// 0-based rank of guess `g`, with rank 0 the leading guess. Ties break
/// toward the *higher* guess index, matching the argmax the DPA verdict
/// uses, so rank 0 always names `DpaResult::best_guess`. The rank of the
/// true subkey over a campaign is the standard key-rank convergence curve.
#[must_use]
pub fn guess_ranks(peaks: &[f64; 64]) -> [u8; 64] {
    let mut order: [u8; 64] = std::array::from_fn(|i| i as u8);
    order.sort_by(|&a, &b| peaks[b as usize].total_cmp(&peaks[a as usize]).then_with(|| b.cmp(&a)));
    let mut ranks = [0u8; 64];
    for (rank, &guess) in order.iter().enumerate() {
        ranks[guess as usize] = rank as u8;
    }
    ranks
}

impl AttackProgress for ProgressCounters {
    fn on_trace(&mut self, _index: usize, _total: usize, len: usize) {
        self.traces += 1;
        self.trace_samples += len;
    }

    fn on_guess(&mut self, guess: u8, peak: f64, _cycle: usize) {
        self.guesses += 1;
        if self.leader.map(|(_, best)| peak > best).unwrap_or(true) {
            self.leader = Some((guess, peak));
            self.lead_changes += 1;
        }
    }

    fn on_complete(&mut self, best_guess: u8, margin: f64) {
        self.outcome = Some((best_guess, margin));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_campaign() {
        let mut p = ProgressCounters::new();
        p.on_trace(0, 2, 100);
        p.on_trace(1, 2, 100);
        p.on_guess(0, 1.0, 5);
        p.on_guess(1, 0.5, 9); // does not take the lead
        p.on_guess(2, 2.0, 7); // takes the lead
        p.on_complete(2, 2.0);
        assert_eq!(p.traces, 2);
        assert_eq!(p.trace_samples, 200);
        assert_eq!(p.guesses, 3);
        assert_eq!(p.lead_changes, 2);
        assert_eq!(p.leader, Some((2, 2.0)));
        assert_eq!(p.outcome, Some((2, 2.0)));
    }

    #[test]
    fn guess_ranks_orders_by_peak_descending() {
        let mut peaks = [0.0f64; 64];
        peaks[5] = 3.0;
        peaks[17] = 2.0;
        peaks[40] = 1.0;
        let ranks = guess_ranks(&peaks);
        assert_eq!(ranks[5], 0);
        assert_eq!(ranks[17], 1);
        assert_eq!(ranks[40], 2);
        // Every rank 0..64 appears exactly once.
        let mut seen = [false; 64];
        for &r in &ranks {
            assert!(!seen[r as usize], "rank {r} assigned twice");
            seen[r as usize] = true;
        }
    }

    #[test]
    fn guess_ranks_ties_break_toward_higher_guess() {
        // All-equal peaks: the verdict's `max_by` keeps the last maximum,
        // so rank 0 must be guess 63.
        let peaks = [1.0f64; 64];
        let ranks = guess_ranks(&peaks);
        assert_eq!(ranks[63], 0);
        assert_eq!(ranks[0], 63);
    }

    #[test]
    fn counters_handle_nan_peaks_without_losing_the_lead() {
        // A NaN peak never takes the lead (comparison is false), so the
        // leader stays well-defined for the progress line.
        let mut p = ProgressCounters::new();
        p.on_guess(1, 2.0, 0);
        p.on_guess(2, f64::NAN, 0);
        assert_eq!(p.leader, Some((1, 2.0)));
        assert_eq!(p.lead_changes, 1);
    }

    #[test]
    fn unit_and_borrow_are_observers() {
        fn drive<P: AttackProgress>(mut p: P) {
            p.on_trace(0, 1, 1);
            p.on_guess(0, 0.0, 0);
            p.on_complete(0, 1.0);
        }
        drive(());
        let mut c = ProgressCounters::new();
        drive(&mut c);
        assert_eq!(c.traces, 1);
    }
}
