//! Trace statistics: the arithmetic behind DPA.

use std::fmt;

/// Typed failures of the trace-statistics layer.
///
/// Misaligned traces and degenerate matrices used to surface as panics
/// deep inside an attack; harness code (campaign runners, CLIs) wants to
/// classify them instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// A trace's length disagrees with the matrix / accumulator width.
    WidthMismatch {
        /// The established width.
        expected: usize,
        /// The offending trace's length.
        got: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::WidthMismatch { expected, got } => {
                write!(f, "misaligned trace: expected width {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// A set of equal-length power traces (one row per encryption run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMatrix {
    rows: Vec<Vec<f64>>,
    width: usize,
}

impl TraceMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from earlier rows — DPA requires
    /// aligned traces, and the simulator produces perfectly aligned ones.
    /// Harness code that cannot rule out misalignment should use
    /// [`TraceMatrix::try_push`].
    pub fn push(&mut self, trace: Vec<f64>) {
        self.try_push(trace).expect("misaligned trace");
    }

    /// Adds one trace, reporting a width disagreement as a typed error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`StatsError::WidthMismatch`] when the trace length differs from
    /// earlier rows; the matrix is left unchanged.
    pub fn try_push(&mut self, trace: Vec<f64>) -> Result<(), StatsError> {
        if self.rows.is_empty() {
            self.width = trace.len();
        } else if trace.len() != self.width {
            return Err(StatsError::WidthMismatch { expected: self.width, got: trace.len() });
        }
        self.rows.push(trace);
        Ok(())
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no traces are recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Trace length in cycles.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

impl FromIterator<Vec<f64>> for TraceMatrix {
    fn from_iter<I: IntoIterator<Item = Vec<f64>>>(iter: I) -> Self {
        let mut m = TraceMatrix::new();
        for t in iter {
            m.push(t);
        }
        m
    }
}

/// Pointwise mean of a set of traces. Empty input gives an empty trace.
pub fn mean_trace(m: &TraceMatrix) -> Vec<f64> {
    if m.is_empty() {
        return Vec::new();
    }
    let n = m.len() as f64;
    let mut acc = vec![0.0; m.width()];
    for row in m.rows() {
        for (a, v) in acc.iter_mut().zip(row) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// Pointwise variance (population) of a set of traces.
pub fn variance_trace(m: &TraceMatrix) -> Vec<f64> {
    if m.is_empty() {
        return Vec::new();
    }
    let mean = mean_trace(m);
    let n = m.len() as f64;
    let mut acc = vec![0.0; m.width()];
    for row in m.rows() {
        for ((a, v), mu) in acc.iter_mut().zip(row).zip(&mean) {
            let d = v - mu;
            *a += d * d;
        }
    }
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// The DPA statistic: pointwise `mean(group1) - mean(group0)`.
///
/// Groups of different sizes are fine; an empty group yields zeros (no
/// evidence either way).
pub fn difference_of_means(g0: &TraceMatrix, g1: &TraceMatrix) -> Vec<f64> {
    let width = g0.width().max(g1.width());
    if g0.is_empty() || g1.is_empty() {
        return vec![0.0; width];
    }
    let m0 = mean_trace(g0);
    let m1 = mean_trace(g1);
    m1.iter().zip(&m0).map(|(a, b)| a - b).collect()
}

/// Pointwise Welch's *t* statistic between two groups — the standard
/// leakage-assessment test (TVLA-style): |t| ≳ 4.5 flags a leak.
pub fn welch_t(g0: &TraceMatrix, g1: &TraceMatrix) -> Vec<f64> {
    if g0.len() < 2 || g1.len() < 2 {
        return vec![0.0; g0.width().max(g1.width())];
    }
    let m0 = mean_trace(g0);
    let m1 = mean_trace(g1);
    let v0 = variance_trace(g0);
    let v1 = variance_trace(g1);
    let (n0, n1) = (g0.len() as f64, g1.len() as f64);
    m0.iter()
        .zip(&m1)
        .zip(v0.iter().zip(&v1))
        .map(|((mu0, mu1), (s0, s1))| {
            let denom = (s0 / n0 + s1 / n1).sqrt();
            if denom < 1e-15 {
                0.0
            } else {
                (mu1 - mu0) / denom
            }
        })
        .collect()
}

/// [`difference_of_means`] with the group widths checked: two non-empty
/// groups of different widths are a data-handling bug the caller should
/// hear about, not a silently truncated statistic.
///
/// # Errors
///
/// [`StatsError::WidthMismatch`] when both groups are non-empty and their
/// widths differ.
pub fn difference_of_means_checked(
    g0: &TraceMatrix,
    g1: &TraceMatrix,
) -> Result<Vec<f64>, StatsError> {
    check_group_widths(g0, g1)?;
    Ok(difference_of_means(g0, g1))
}

/// [`welch_t`] with the group widths checked; see
/// [`difference_of_means_checked`].
///
/// # Errors
///
/// [`StatsError::WidthMismatch`] when both groups are non-empty and their
/// widths differ.
pub fn welch_t_checked(g0: &TraceMatrix, g1: &TraceMatrix) -> Result<Vec<f64>, StatsError> {
    check_group_widths(g0, g1)?;
    Ok(welch_t(g0, g1))
}

fn check_group_widths(g0: &TraceMatrix, g1: &TraceMatrix) -> Result<(), StatsError> {
    if !g0.is_empty() && !g1.is_empty() && g0.width() != g1.width() {
        return Err(StatsError::WidthMismatch { expected: g0.width(), got: g1.width() });
    }
    Ok(())
}

/// Largest absolute value in a statistic trace, with its index.
pub fn peak(stat: &[f64]) -> (usize, f64) {
    stat.iter().enumerate().map(|(i, &v)| (i, v.abs())).fold((0, 0.0), |best, cur| {
        if cur.1 > best.1 {
            cur
        } else {
            best
        }
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> TraceMatrix {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn mean_of_constant_rows() {
        let mm = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(mean_trace(&mm), vec![2.0, 3.0]);
    }

    #[test]
    fn variance_of_identical_rows_is_zero() {
        let mm = m(&[&[5.0, 5.0], &[5.0, 5.0]]);
        assert_eq!(variance_trace(&mm), vec![0.0, 0.0]);
    }

    #[test]
    fn difference_of_means_signs() {
        let g0 = m(&[&[1.0, 10.0]]);
        let g1 = m(&[&[3.0, 4.0]]);
        assert_eq!(difference_of_means(&g0, &g1), vec![2.0, -6.0]);
    }

    #[test]
    fn empty_group_gives_zeros() {
        let g0 = TraceMatrix::new();
        let g1 = m(&[&[3.0, 4.0]]);
        assert_eq!(difference_of_means(&g0, &g1), vec![0.0, 0.0]);
    }

    #[test]
    fn welch_t_flags_separated_groups() {
        let g0 = m(&[&[0.0], &[0.1], &[-0.1], &[0.05]]);
        let g1 = m(&[&[10.0], &[10.1], &[9.9], &[10.05]]);
        let t = welch_t(&g0, &g1);
        assert!(t[0] > 50.0, "t = {}", t[0]);
    }

    #[test]
    fn welch_t_near_zero_for_same_distribution() {
        let g0 = m(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let g1 = m(&[&[2.0], &[3.0], &[1.0], &[4.0]]);
        let t = welch_t(&g0, &g1);
        assert!(t[0].abs() < 1.0);
    }

    #[test]
    fn welch_t_zero_variance_guard() {
        let g0 = m(&[&[1.0], &[1.0]]);
        let g1 = m(&[&[1.0], &[1.0]]);
        assert_eq!(welch_t(&g0, &g1), vec![0.0]);
    }

    #[test]
    fn peak_finds_largest_magnitude() {
        assert_eq!(peak(&[0.5, -3.0, 2.0]), (1, 3.0));
        assert_eq!(peak(&[]), (0, 0.0));
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_traces_rejected() {
        let mut mm = TraceMatrix::new();
        mm.push(vec![1.0, 2.0]);
        mm.push(vec![1.0]);
    }

    #[test]
    fn try_push_reports_misalignment_as_typed_error() {
        let mut mm = TraceMatrix::new();
        mm.try_push(vec![1.0, 2.0]).expect("first row sets the width");
        let err = mm.try_push(vec![1.0]).unwrap_err();
        assert_eq!(err, StatsError::WidthMismatch { expected: 2, got: 1 });
        assert!(err.to_string().contains("expected width 2"));
        // The rejected row was not recorded.
        assert_eq!(mm.len(), 1);
        assert_eq!(mm.width(), 2);
        // A matching row still lands.
        mm.try_push(vec![3.0, 4.0]).expect("aligned row accepted");
        assert_eq!(mm.len(), 2);
    }

    #[test]
    fn empty_matrix_statistics_are_empty_not_panics() {
        let empty = TraceMatrix::new();
        assert!(empty.is_empty());
        assert_eq!(empty.width(), 0);
        assert_eq!(mean_trace(&empty), Vec::<f64>::new());
        assert_eq!(variance_trace(&empty), Vec::<f64>::new());
        assert_eq!(difference_of_means(&empty, &empty), Vec::<f64>::new());
        assert_eq!(welch_t(&empty, &empty), Vec::<f64>::new());
        assert_eq!(peak(&mean_trace(&empty)), (0, 0.0));
    }

    #[test]
    fn checked_statistics_reject_mismatched_group_widths() {
        let g0 = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g1 = m(&[&[1.0], &[2.0]]);
        let err = difference_of_means_checked(&g0, &g1).unwrap_err();
        assert_eq!(err, StatsError::WidthMismatch { expected: 2, got: 1 });
        assert_eq!(
            welch_t_checked(&g0, &g1),
            Err(StatsError::WidthMismatch { expected: 2, got: 1 })
        );
        // An empty group is not a width conflict (it means "no evidence").
        let empty = TraceMatrix::new();
        assert_eq!(difference_of_means_checked(&empty, &g0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(welch_t_checked(&g0, &g0).unwrap().len(), 2);
    }

    #[test]
    fn welch_t_propagates_nan_instead_of_hiding_it() {
        // A NaN sample poisons that cycle's t (mean and variance are NaN,
        // the `denom < eps` guard is false for NaN) and leaves the other
        // cycles untouched — corrupt input is visible, never laundered
        // into a plausible statistic.
        let g0 = m(&[&[1.0, f64::NAN], &[2.0, f64::NAN]]);
        let g1 = m(&[&[5.0, 1.0], &[6.0, 2.0]]);
        let t = welch_t(&g0, &g1);
        assert!(t[0].is_finite(), "clean cycle stays finite: {t:?}");
        assert!(t[1].is_nan(), "NaN input must surface as NaN: {t:?}");
    }

    #[test]
    fn peak_on_all_equal_input_picks_the_first_index() {
        assert_eq!(peak(&[2.5, 2.5, 2.5]), (0, 2.5));
        assert_eq!(peak(&[-2.5, -2.5]), (0, 2.5));
        assert_eq!(peak(&[0.0, 0.0]), (0, 0.0));
    }
}
