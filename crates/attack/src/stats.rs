//! Trace statistics: the arithmetic behind DPA.

/// A set of equal-length power traces (one row per encryption run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMatrix {
    rows: Vec<Vec<f64>>,
    width: usize,
}

impl TraceMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from earlier rows — DPA requires
    /// aligned traces, and the simulator produces perfectly aligned ones.
    pub fn push(&mut self, trace: Vec<f64>) {
        if self.rows.is_empty() {
            self.width = trace.len();
        } else {
            assert_eq!(trace.len(), self.width, "misaligned trace");
        }
        self.rows.push(trace);
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no traces are recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Trace length in cycles.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

impl FromIterator<Vec<f64>> for TraceMatrix {
    fn from_iter<I: IntoIterator<Item = Vec<f64>>>(iter: I) -> Self {
        let mut m = TraceMatrix::new();
        for t in iter {
            m.push(t);
        }
        m
    }
}

/// Pointwise mean of a set of traces. Empty input gives an empty trace.
pub fn mean_trace(m: &TraceMatrix) -> Vec<f64> {
    if m.is_empty() {
        return Vec::new();
    }
    let n = m.len() as f64;
    let mut acc = vec![0.0; m.width()];
    for row in m.rows() {
        for (a, v) in acc.iter_mut().zip(row) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// Pointwise variance (population) of a set of traces.
pub fn variance_trace(m: &TraceMatrix) -> Vec<f64> {
    if m.is_empty() {
        return Vec::new();
    }
    let mean = mean_trace(m);
    let n = m.len() as f64;
    let mut acc = vec![0.0; m.width()];
    for row in m.rows() {
        for ((a, v), mu) in acc.iter_mut().zip(row).zip(&mean) {
            let d = v - mu;
            *a += d * d;
        }
    }
    for a in &mut acc {
        *a /= n;
    }
    acc
}

/// The DPA statistic: pointwise `mean(group1) - mean(group0)`.
///
/// Groups of different sizes are fine; an empty group yields zeros (no
/// evidence either way).
pub fn difference_of_means(g0: &TraceMatrix, g1: &TraceMatrix) -> Vec<f64> {
    let width = g0.width().max(g1.width());
    if g0.is_empty() || g1.is_empty() {
        return vec![0.0; width];
    }
    let m0 = mean_trace(g0);
    let m1 = mean_trace(g1);
    m1.iter().zip(&m0).map(|(a, b)| a - b).collect()
}

/// Pointwise Welch's *t* statistic between two groups — the standard
/// leakage-assessment test (TVLA-style): |t| ≳ 4.5 flags a leak.
pub fn welch_t(g0: &TraceMatrix, g1: &TraceMatrix) -> Vec<f64> {
    if g0.len() < 2 || g1.len() < 2 {
        return vec![0.0; g0.width().max(g1.width())];
    }
    let m0 = mean_trace(g0);
    let m1 = mean_trace(g1);
    let v0 = variance_trace(g0);
    let v1 = variance_trace(g1);
    let (n0, n1) = (g0.len() as f64, g1.len() as f64);
    m0.iter()
        .zip(&m1)
        .zip(v0.iter().zip(&v1))
        .map(|((mu0, mu1), (s0, s1))| {
            let denom = (s0 / n0 + s1 / n1).sqrt();
            if denom < 1e-15 {
                0.0
            } else {
                (mu1 - mu0) / denom
            }
        })
        .collect()
}

/// Largest absolute value in a statistic trace, with its index.
pub fn peak(stat: &[f64]) -> (usize, f64) {
    stat.iter().enumerate().map(|(i, &v)| (i, v.abs())).fold((0, 0.0), |best, cur| {
        if cur.1 > best.1 {
            cur
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> TraceMatrix {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn mean_of_constant_rows() {
        let mm = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(mean_trace(&mm), vec![2.0, 3.0]);
    }

    #[test]
    fn variance_of_identical_rows_is_zero() {
        let mm = m(&[&[5.0, 5.0], &[5.0, 5.0]]);
        assert_eq!(variance_trace(&mm), vec![0.0, 0.0]);
    }

    #[test]
    fn difference_of_means_signs() {
        let g0 = m(&[&[1.0, 10.0]]);
        let g1 = m(&[&[3.0, 4.0]]);
        assert_eq!(difference_of_means(&g0, &g1), vec![2.0, -6.0]);
    }

    #[test]
    fn empty_group_gives_zeros() {
        let g0 = TraceMatrix::new();
        let g1 = m(&[&[3.0, 4.0]]);
        assert_eq!(difference_of_means(&g0, &g1), vec![0.0, 0.0]);
    }

    #[test]
    fn welch_t_flags_separated_groups() {
        let g0 = m(&[&[0.0], &[0.1], &[-0.1], &[0.05]]);
        let g1 = m(&[&[10.0], &[10.1], &[9.9], &[10.05]]);
        let t = welch_t(&g0, &g1);
        assert!(t[0] > 50.0, "t = {}", t[0]);
    }

    #[test]
    fn welch_t_near_zero_for_same_distribution() {
        let g0 = m(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let g1 = m(&[&[2.0], &[3.0], &[1.0], &[4.0]]);
        let t = welch_t(&g0, &g1);
        assert!(t[0].abs() < 1.0);
    }

    #[test]
    fn welch_t_zero_variance_guard() {
        let g0 = m(&[&[1.0], &[1.0]]);
        let g1 = m(&[&[1.0], &[1.0]]);
        assert_eq!(welch_t(&g0, &g1), vec![0.0]);
    }

    #[test]
    fn peak_finds_largest_magnitude() {
        assert_eq!(peak(&[0.5, -3.0, 2.0]), (1, 3.0));
        assert_eq!(peak(&[]), (0, 0.0));
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_traces_rejected() {
        let mut mm = TraceMatrix::new();
        mm.push(vec![1.0, 2.0]);
        mm.push(vec![1.0]);
    }
}
