//! Correlation power analysis (CPA) — the modern refinement of DPA.
//!
//! Where DPA partitions traces by a single predicted bit, CPA correlates
//! the trace at every cycle with a *leakage model* of a predicted
//! intermediate — here the Hamming weight of the round-1 S-box output —
//! using Pearson's r. CPA extracts more of the signal per trace and is the
//! standard attack the later literature evaluates against; a masking
//! scheme that only defeated single-bit DPA would not survive it, so this
//! crate brings it to bear on the simulator too.

use crate::dpa::{plaintext_for, selection_bit};
use crate::online::OnlineCpa;
use crate::progress::AttackProgress;
use emask_par::{merge_shards, run_sharded, Jobs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// CPA campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpaConfig {
    /// Number of random plaintexts / traces.
    pub samples: usize,
    /// Which S-box to target (0-based).
    pub sbox: usize,
    /// RNG seed for plaintext sampling.
    pub seed: u64,
}

impl Default for CpaConfig {
    fn default() -> Self {
        Self { samples: 200, sbox: 0, seed: 0xC0A }
    }
}

/// Outcome of a CPA campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaResult {
    /// Peak |Pearson r| per subkey guess.
    pub peaks: [f64; 64],
    /// Cycle of each guess's peak.
    pub peak_cycles: [usize; 64],
    /// The winning guess.
    pub best_guess: u8,
    /// Best peak / runner-up peak.
    pub margin: f64,
}

impl fmt::Display for CpaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CPA: best guess {:#04X} (|r| = {:.3}, margin {:.2}x)",
            self.best_guess, self.peaks[self.best_guess as usize], self.margin
        )
    }
}

/// The leakage model: Hamming weight of the predicted round-1 S-box
/// output under `guess`.
///
/// # Panics
///
/// Panics if `sbox >= 8` or `guess >= 64`.
pub fn predicted_hamming_weight(plaintext: u64, guess: u8, sbox: usize) -> u32 {
    (0..4).map(|bit| u32::from(selection_bit(plaintext, guess, sbox, bit))).sum()
}

/// Runs a CPA campaign against a trace oracle.
///
/// # Panics
///
/// Panics if `cfg.samples < 2` or `cfg.sbox >= 8`.
pub fn cpa_recover_subkey<F>(oracle: F, cfg: &CpaConfig) -> CpaResult
where
    F: FnMut(u64) -> Vec<f64>,
{
    cpa_recover_subkey_with(oracle, cfg, &mut ())
}

/// [`cpa_recover_subkey`] with progress reporting: per-trace collection,
/// the peak |Pearson r| of every guess, and the final verdict — the
/// correlation-convergence feed for long campaigns.
///
/// # Panics
///
/// As for [`cpa_recover_subkey`].
pub fn cpa_recover_subkey_with<F, P>(mut oracle: F, cfg: &CpaConfig, progress: &mut P) -> CpaResult
where
    F: FnMut(u64) -> Vec<f64>,
    P: AttackProgress,
{
    assert!(cfg.samples >= 2, "correlation needs at least two samples");
    assert!(cfg.sbox < 8);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let plaintexts: Vec<u64> = (0..cfg.samples).map(|_| rng.gen()).collect();
    let traces: Vec<Vec<f64>> = plaintexts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let t = oracle(p);
            progress.on_trace(i, cfg.samples, t.len());
            t
        })
        .collect();
    let width = traces.first().map(Vec::len).unwrap_or(0);
    let n = cfg.samples as f64;

    // Precompute per-cycle trace sums for the correlation denominators.
    let mut sum_t = vec![0.0; width];
    let mut sum_t2 = vec![0.0; width];
    for trace in &traces {
        for (j, &v) in trace.iter().enumerate() {
            sum_t[j] += v;
            sum_t2[j] += v * v;
        }
    }

    let mut peaks = [0.0f64; 64];
    let mut peak_cycles = [0usize; 64];
    for guess in 0..64u8 {
        let hw: Vec<f64> = plaintexts
            .iter()
            .map(|&p| f64::from(predicted_hamming_weight(p, guess, cfg.sbox)))
            .collect();
        let sum_h: f64 = hw.iter().sum();
        let sum_h2: f64 = hw.iter().map(|h| h * h).sum();
        let var_h = sum_h2 - sum_h * sum_h / n;
        if var_h < 1e-12 {
            progress.on_guess(guess, 0.0, 0); // degenerate model (all predictions equal)
            continue;
        }
        let mut best = (0usize, 0.0f64);
        let mut sum_ht = vec![0.0; width];
        for (h, trace) in hw.iter().zip(&traces) {
            for (j, &v) in trace.iter().enumerate() {
                sum_ht[j] += h * v;
            }
        }
        for j in 0..width {
            let cov = sum_ht[j] - sum_h * sum_t[j] / n;
            let var_t = sum_t2[j] - sum_t[j] * sum_t[j] / n;
            if var_t < 1e-12 {
                continue;
            }
            let r = (cov / (var_h * var_t).sqrt()).abs();
            if r > best.1 {
                best = (j, r);
            }
        }
        peaks[guess as usize] = best.1;
        peak_cycles[guess as usize] = best.0;
        progress.on_guess(guess, best.1, best.0);
    }

    let best_guess = (0..64).max_by(|&a, &b| peaks[a].total_cmp(&peaks[b])).unwrap_or(0) as u8;
    let best = peaks[best_guess as usize];
    let second = peaks
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != best_guess as usize)
        .map(|(_, &v)| v)
        .fold(0.0f64, f64::max);
    let margin = if second > 1e-12 {
        best / second
    } else if best > 1e-12 {
        f64::INFINITY
    } else {
        1.0
    };
    progress.on_complete(best_guess, margin);
    CpaResult { peaks, peak_cycles, best_guess, margin }
}

/// Parallel, single-pass [`cpa_recover_subkey`]: acquisition is sharded
/// across `jobs` workers and each trace is folded straight into an
/// [`OnlineCpa`] accumulator — memory stays O(guesses × trace_len)
/// regardless of `cfg.samples`, and the result is bit-identical for any
/// `jobs` value. Plaintexts come from
/// [`plaintext_for`](crate::dpa::plaintext_for), so the trace set differs
/// from the sequential-RNG [`cpa_recover_subkey`] at the same seed.
///
/// # Panics
///
/// Panics if `cfg.samples < 2` or `cfg.sbox >= 8`.
pub fn cpa_recover_subkey_par<F>(oracle: &F, cfg: &CpaConfig, jobs: Jobs) -> CpaResult
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    assert!(cfg.samples >= 2, "correlation needs at least two samples");
    let proto = OnlineCpa::new(cfg.sbox);
    let accs = run_sharded(jobs, cfg.samples, |_, range| {
        let mut acc = proto.clone();
        for i in range {
            let p = plaintext_for(cfg.seed, i as u64);
            acc.push(p, &oracle(p)).expect("oracle produced a misaligned trace");
        }
        acc
    });
    merge_shards(accs, |a, b| {
        a.merge(&b).expect("shards saw traces of different widths");
    })
    .expect("samples >= 2 yields at least one shard")
    .result()
}

/// [`cpa_recover_subkey_par`] under a cooperative
/// [`CancelToken`](emask_par::CancelToken): the token is checked before
/// each trace is acquired, so a trip (client cancel, deadline, shutdown)
/// stops the campaign at a trial boundary and returns a typed
/// [`Interrupted`](emask_par::Interrupted) with the number of fully
/// folded trials. A token that trips after the last trial has no effect:
/// a completed run is always delivered, bit-identical to
/// [`cpa_recover_subkey_par`].
///
/// # Errors
///
/// Returns [`Interrupted`](emask_par::Interrupted) if the token trips
/// before every trial has been folded.
///
/// # Panics
///
/// Panics if `cfg.samples < 2` or `cfg.sbox >= 8`.
pub fn cpa_recover_subkey_par_cancellable<F>(
    oracle: &F,
    cfg: &CpaConfig,
    jobs: Jobs,
    token: &emask_par::CancelToken,
) -> Result<CpaResult, emask_par::Interrupted>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    assert!(cfg.samples >= 2, "correlation needs at least two samples");
    let proto = OnlineCpa::new(cfg.sbox);
    let accs = emask_par::run_sharded_cancellable(jobs, cfg.samples, token, |_, range| {
        let mut acc = proto.clone();
        for (done, i) in range.enumerate() {
            if token.check().is_err() {
                return Err(done);
            }
            let p = plaintext_for(cfg.seed, i as u64);
            acc.push(p, &oracle(p)).expect("oracle produced a misaligned trace");
        }
        Ok(acc)
    })?;
    Ok(merge_shards(accs, |a, b| {
        a.merge(&b).expect("shards saw traces of different widths");
    })
    .expect("samples >= 2 yields at least one shard")
    .result())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use emask_des::KeySchedule;

    const KEY: u64 = 0x1334_5779_9BBC_DFF1;

    /// A Hamming-weight-leaking oracle: one sample proportional to the
    /// true S-box output weight, clutter elsewhere.
    fn hw_oracle(sbox: usize) -> impl FnMut(u64) -> Vec<f64> {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(sbox);
        move |p: u64| {
            let hw = f64::from(predicted_hamming_weight(p, subkey, sbox));
            vec![100.0 + (p % 23) as f64, 100.0 + 3.0 * hw, 100.0 - (p % 7) as f64]
        }
    }

    #[test]
    fn predicted_weight_is_bounded() {
        for p in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            for g in 0..64 {
                let w = predicted_hamming_weight(p, g, 0);
                assert!(w <= 4);
            }
        }
    }

    #[test]
    fn cpa_recovers_subkey_from_hw_leak() {
        for sbox in [0usize, 5] {
            let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(sbox);
            let cfg = CpaConfig { samples: 300, sbox, seed: 77 };
            let result = cpa_recover_subkey(hw_oracle(sbox), &cfg);
            assert_eq!(result.best_guess, subkey, "S{}: {result}", sbox + 1);
            assert!(result.peaks[subkey as usize] > 0.95, "{result}");
        }
    }

    #[test]
    fn cpa_finds_nothing_on_constant_traces() {
        let cfg = CpaConfig { samples: 100, sbox: 0, seed: 5 };
        let result = cpa_recover_subkey(|_| vec![42.0; 4], &cfg);
        assert!(result.peaks.iter().all(|&p| p < 1e-9), "{result}");
    }

    #[test]
    fn uncancelled_cpa_cancellable_matches_par() {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(0);
        let cfg = CpaConfig { samples: 200, sbox: 0, seed: 77 };
        let oracle = move |p: u64| {
            let hw = f64::from(predicted_hamming_weight(p, subkey, 0));
            vec![100.0 + (p % 23) as f64, 100.0 + 3.0 * hw, 100.0 - (p % 7) as f64]
        };
        let plain = cpa_recover_subkey_par(&oracle, &cfg, Jobs::new(4).unwrap());
        let token = emask_par::CancelToken::new();
        let cancellable =
            cpa_recover_subkey_par_cancellable(&oracle, &cfg, Jobs::new(4).unwrap(), &token)
                .expect("untripped token never interrupts");
        assert_eq!(plain.best_guess, subkey);
        assert_eq!(plain.peaks, cancellable.peaks, "cancellable harness must be bit-identical");
        assert_eq!(plain.peak_cycles, cancellable.peak_cycles);
    }

    #[test]
    fn pre_cancelled_cpa_interrupts_with_zero_trials() {
        let cfg = CpaConfig { samples: 100, sbox: 0, seed: 5 };
        let token = emask_par::CancelToken::new();
        token.cancel(emask_par::CancelReason::Cancelled);
        let oracle = |_: u64| vec![42.0; 4];
        let err = cpa_recover_subkey_par_cancellable(&oracle, &cfg, Jobs::new(2).unwrap(), &token)
            .expect_err("tripped token must interrupt");
        assert_eq!(err.completed_trials, 0);
        assert_eq!(err.reason, emask_par::CancelReason::Cancelled);
    }

    #[test]
    fn cpa_peak_lands_on_the_leaky_cycle() {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(0);
        let cfg = CpaConfig { samples: 300, sbox: 0, seed: 9 };
        let result = cpa_recover_subkey(hw_oracle(0), &cfg);
        assert_eq!(result.peak_cycles[subkey as usize], 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_sample_rejected() {
        let cfg = CpaConfig { samples: 1, sbox: 0, seed: 0 };
        cpa_recover_subkey(|_| vec![0.0], &cfg);
    }

    #[test]
    fn display_shows_r() {
        let cfg = CpaConfig { samples: 64, sbox: 0, seed: 3 };
        let r = cpa_recover_subkey(hw_oracle(0), &cfg);
        assert!(r.to_string().contains("|r|"));
    }

    #[test]
    fn parallel_cpa_recovers_subkey_and_ignores_job_count() {
        use emask_par::Jobs;
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(0);
        let oracle = move |p: u64| {
            let hw = f64::from(predicted_hamming_weight(p, subkey, 0));
            vec![100.0 + (p % 23) as f64, 100.0 + 3.0 * hw, 100.0 - (p % 7) as f64]
        };
        let cfg = CpaConfig { samples: 300, sbox: 0, seed: 77 };
        let serial = cpa_recover_subkey_par(&oracle, &cfg, Jobs::serial());
        assert_eq!(serial.best_guess, subkey, "{serial}");
        assert!(serial.peaks[subkey as usize] > 0.95, "{serial}");
        for jobs in [2usize, 4, 7] {
            let par = cpa_recover_subkey_par(&oracle, &cfg, Jobs::new(jobs).unwrap());
            assert_eq!(par, serial, "jobs = {jobs}");
        }
    }
}
