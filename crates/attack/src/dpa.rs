//! Differential power analysis against round 1 of DES.
//!
//! Implements the attack the paper defends against (§1, after Kocher et
//! al. and Goubin & Patarin): collect traces for many random plaintexts
//! under a fixed unknown key; for each 6-bit guess of one S-box's round-1
//! subkey, predict an intermediate bit, split the traces into two groups
//! by that bit, and compute the difference of means. The correct guess
//! produces a genuine physical partition and hence a peak; wrong guesses
//! decorrelate and flatten; a masked implementation flattens *every*
//! guess.

use crate::online::OnlineDpa;
use crate::progress::AttackProgress;
use crate::stats::{difference_of_means, peak, TraceMatrix};
use emask_des::bits::permute;
use emask_des::cipher::sbox_lookup;
use emask_des::tables::{E, IP};
use emask_par::{
    merge_shards, par_map, run_sharded, run_sharded_snapshotted_cancellable, trial_seed,
    CancelToken, Interrupted, Jobs,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// DPA campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpaConfig {
    /// Number of random plaintexts / traces.
    pub samples: usize,
    /// Which S-box to target (0-based, S1 = 0).
    pub sbox: usize,
    /// Which of the S-box's 4 output bits to predict (0 = MSB).
    pub bit: usize,
    /// RNG seed for plaintext sampling (reproducibility).
    pub seed: u64,
}

impl Default for DpaConfig {
    fn default() -> Self {
        Self { samples: 200, sbox: 0, bit: 0, seed: 0xD5A }
    }
}

/// Outcome of a DPA campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct DpaResult {
    /// Peak |difference-of-means| for each of the 64 subkey guesses.
    pub peaks: [f64; 64],
    /// The cycle index of each guess's peak.
    pub peak_cycles: [usize; 64],
    /// The guess with the highest peak.
    pub best_guess: u8,
    /// `best peak / second-best peak` — the attack's confidence; ≈1 means
    /// the attack found nothing.
    pub margin: f64,
}

impl DpaResult {
    /// True if the campaign singled out `subkey` with a margin of at least
    /// `min_margin`.
    pub fn recovered(&self, subkey: u8, min_margin: f64) -> bool {
        self.best_guess == subkey && self.margin >= min_margin
    }
}

impl fmt::Display for DpaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DPA: best guess {:#04X} (peak {:.2} pJ, margin {:.2}x)",
            self.best_guess, self.peaks[self.best_guess as usize], self.margin
        )
    }
}

/// The selection function: the predicted value of output bit `bit` of
/// S-box `sbox` in round 1, for `plaintext` under 6-bit subkey `guess`.
///
/// This is pure DES structure — `IP`, then `E(R0)`, then the guessed
/// subkey XOR, then the S-box — exactly what an attacker computes.
///
/// # Panics
///
/// Panics if `sbox >= 8`, `bit >= 4`, or `guess >= 64`.
pub fn selection_bit(plaintext: u64, guess: u8, sbox: usize, bit: usize) -> bool {
    assert!(sbox < 8 && bit < 4 && guess < 64);
    let s_out = sbox_lookup(sbox, sbox_chunk(plaintext, sbox) ^ guess);
    (s_out >> (3 - bit)) & 1 == 1
}

/// The 6-bit S-box input chunk `E(R0)` feeds into S-box `sbox` in round 1,
/// before the subkey XOR — the plaintext-derived half of the selection
/// function. Computing it once per trace lets single-pass accumulators
/// evaluate all 64 guesses with one table lookup each instead of repeating
/// the permutations per guess.
///
/// # Panics
///
/// Panics if `sbox >= 8`.
pub fn sbox_chunk(plaintext: u64, sbox: usize) -> u8 {
    assert!(sbox < 8);
    let permuted = permute(plaintext, 64, &IP);
    let r0 = permuted as u32;
    let expanded = permute(u64::from(r0), 32, &E);
    ((expanded >> (42 - 6 * sbox)) & 0x3F) as u8
}

/// Collects the trace set for a campaign: `samples` random plaintexts and
/// their traces from `oracle`.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn collect_traces<F>(oracle: F, samples: usize, seed: u64) -> (Vec<u64>, Vec<Vec<f64>>)
where
    F: FnMut(u64) -> Vec<f64>,
{
    collect_traces_with(oracle, samples, seed, &mut ())
}

/// [`collect_traces`] with per-trace progress reporting:
/// [`AttackProgress::on_trace`] fires as each trace lands — the campaign's
/// dominant cost against the cycle-accurate simulator.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn collect_traces_with<F, P>(
    mut oracle: F,
    samples: usize,
    seed: u64,
    progress: &mut P,
) -> (Vec<u64>, Vec<Vec<f64>>)
where
    F: FnMut(u64) -> Vec<f64>,
    P: AttackProgress,
{
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let plaintexts: Vec<u64> = (0..samples).map(|_| rng.gen()).collect();
    let traces: Vec<Vec<f64>> = plaintexts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let t = oracle(p);
            progress.on_trace(i, samples, t.len());
            t
        })
        .collect();
    (plaintexts, traces)
}

/// The plaintext of trial `index` in a seed-per-trial campaign: drawn from
/// an RNG seeded with [`trial_seed`]`(seed, index)`, so it is a pure
/// function of the pair — any worker can produce trial `index`'s input
/// without consuming a shared RNG stream. The parallel entry points use
/// this instead of the sequential draw in [`collect_traces`], which is why
/// their trace sets differ from the legacy serial ones (but are identical
/// across `--jobs` counts).
#[must_use]
pub fn plaintext_for(seed: u64, index: u64) -> u64 {
    StdRng::seed_from_u64(trial_seed(seed, index)).gen()
}

/// Parallel [`collect_traces`]: shards acquisition across `jobs` workers
/// with per-trial plaintexts from [`plaintext_for`]. The returned vectors
/// are in trial order and identical for any `jobs` value.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn collect_traces_par<F>(
    oracle: &F,
    samples: usize,
    seed: u64,
    jobs: Jobs,
) -> (Vec<u64>, Vec<Vec<f64>>)
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    assert!(samples > 0, "need at least one sample");
    let pairs = par_map(jobs, samples, |i| {
        let p = plaintext_for(seed, i as u64);
        let t = oracle(p);
        (p, t)
    });
    pairs.into_iter().unzip()
}

/// Partition-and-difference analysis over an already-collected trace set:
/// the peak |difference of means| per guess for one selection bit.
///
/// # Panics
///
/// Panics if `sbox >= 8` or `bit >= 4`.
pub fn analyze_bit(
    plaintexts: &[u64],
    traces: &[Vec<f64>],
    sbox: usize,
    bit: usize,
) -> ([f64; 64], [usize; 64]) {
    assert!(sbox < 8 && bit < 4);
    let mut peaks = [0.0f64; 64];
    let mut peak_cycles = [0usize; 64];
    for guess in 0..64u8 {
        let mut g0 = TraceMatrix::new();
        let mut g1 = TraceMatrix::new();
        for (p, t) in plaintexts.iter().zip(traces) {
            if selection_bit(*p, guess, sbox, bit) {
                g1.push(t.clone());
            } else {
                g0.push(t.clone());
            }
        }
        let dom = difference_of_means(&g0, &g1);
        let (cycle, magnitude) = peak(&dom);
        peaks[guess as usize] = magnitude;
        peak_cycles[guess as usize] = cycle;
    }
    (peaks, peak_cycles)
}

pub(crate) fn result_from_peaks(peaks: [f64; 64], peak_cycles: [usize; 64]) -> DpaResult {
    let best_guess = (0..64).max_by(|&a, &b| peaks[a].total_cmp(&peaks[b])).unwrap_or(0) as u8;
    let best = peaks[best_guess as usize];
    let second = peaks
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != best_guess as usize)
        .map(|(_, &v)| v)
        .fold(0.0f64, f64::max);
    let margin = if second > 1e-12 {
        best / second
    } else if best > 1e-12 {
        f64::INFINITY
    } else {
        1.0
    };
    DpaResult { peaks, peak_cycles, best_guess, margin }
}

/// Runs a single-bit DPA campaign. `oracle` maps a plaintext to its power
/// trace — the physical measurement in the field, the simulator here.
///
/// # Panics
///
/// Panics if the configuration is out of range or `samples == 0`.
pub fn recover_subkey<F>(oracle: F, cfg: &DpaConfig) -> DpaResult
where
    F: FnMut(u64) -> Vec<f64>,
{
    recover_subkey_with(oracle, cfg, &mut ())
}

/// [`recover_subkey`] with progress reporting: per-trace collection,
/// per-guess difference-of-means peaks, and the final verdict.
///
/// # Panics
///
/// As for [`recover_subkey`].
pub fn recover_subkey_with<F, P>(oracle: F, cfg: &DpaConfig, progress: &mut P) -> DpaResult
where
    F: FnMut(u64) -> Vec<f64>,
    P: AttackProgress,
{
    let (plaintexts, traces) = collect_traces_with(oracle, cfg.samples, cfg.seed, progress);
    let (peaks, cycles) = analyze_bit(&plaintexts, &traces, cfg.sbox, cfg.bit);
    for g in 0..64 {
        progress.on_guess(g as u8, peaks[g], cycles[g]);
    }
    let result = result_from_peaks(peaks, cycles);
    progress.on_complete(result.best_guess, result.margin);
    result
}

/// Multi-bit DPA: aggregates the difference-of-means peaks of **all four**
/// output bits of the targeted S-box per guess. DES single-bit DPA suffers
/// well-known ghost peaks (wrong guesses whose selection bit correlates
/// with the true one); the four bits decorrelate differently per guess, so
/// summing their peaks suppresses ghosts at the same trace budget.
///
/// # Panics
///
/// As for [`recover_subkey`].
pub fn recover_subkey_multibit<F>(oracle: F, cfg: &DpaConfig) -> DpaResult
where
    F: FnMut(u64) -> Vec<f64>,
{
    recover_subkey_multibit_with(oracle, cfg, &mut ())
}

/// [`recover_subkey_multibit`] with progress reporting; per-guess events
/// carry the four-bit aggregate peak.
///
/// # Panics
///
/// As for [`recover_subkey`].
pub fn recover_subkey_multibit_with<F, P>(oracle: F, cfg: &DpaConfig, progress: &mut P) -> DpaResult
where
    F: FnMut(u64) -> Vec<f64>,
    P: AttackProgress,
{
    let (plaintexts, traces) = collect_traces_with(oracle, cfg.samples, cfg.seed, progress);
    let mut peaks = [0.0f64; 64];
    let mut peak_cycles = [0usize; 64];
    for bit in 0..4 {
        let (p, c) = analyze_bit(&plaintexts, &traces, cfg.sbox, bit);
        for g in 0..64 {
            peaks[g] += p[g];
            if bit == cfg.bit {
                peak_cycles[g] = c[g];
            }
        }
    }
    for g in 0..64 {
        progress.on_guess(g as u8, peaks[g], peak_cycles[g]);
    }
    let result = result_from_peaks(peaks, peak_cycles);
    progress.on_complete(result.best_guess, result.margin);
    result
}

/// Shards a streaming-DPA campaign across `jobs` workers: each shard folds
/// its trials into a clone of `proto`, shards merge in fixed order.
fn run_online_dpa<F>(
    oracle: &F,
    samples: usize,
    seed: u64,
    jobs: Jobs,
    proto: OnlineDpa,
) -> DpaResult
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    assert!(samples > 0, "need at least one sample");
    let accs = run_sharded(jobs, samples, |_, range| {
        let mut acc = proto.clone();
        for i in range {
            let p = plaintext_for(seed, i as u64);
            acc.push(p, &oracle(p)).expect("oracle produced a misaligned trace");
        }
        acc
    });
    merge_shards(accs, |a, b| {
        a.merge(&b).expect("shards saw traces of different widths");
    })
    .unwrap_or(proto)
    .result()
}

/// Parallel, single-pass [`recover_subkey`]: trace acquisition is sharded
/// across `jobs` workers and each trace is folded straight into an
/// [`OnlineDpa`] accumulator — memory stays O(guesses × trace_len)
/// regardless of `cfg.samples`, and the result is bit-identical for any
/// `jobs` value. Plaintexts come from [`plaintext_for`], so the trace set
/// differs from the sequential-RNG [`recover_subkey`] at the same seed.
///
/// # Panics
///
/// Panics if the configuration is out of range or `samples == 0`.
pub fn recover_subkey_par<F>(oracle: &F, cfg: &DpaConfig, jobs: Jobs) -> DpaResult
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    run_online_dpa(oracle, cfg.samples, cfg.seed, jobs, OnlineDpa::single(cfg.sbox, cfg.bit))
}

/// Parallel, single-pass [`recover_subkey_multibit`]; see
/// [`recover_subkey_par`] for the sharding and seeding contract.
///
/// # Panics
///
/// As for [`recover_subkey_par`].
pub fn recover_subkey_multibit_par<F>(oracle: &F, cfg: &DpaConfig, jobs: Jobs) -> DpaResult
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    run_online_dpa(oracle, cfg.samples, cfg.seed, jobs, OnlineDpa::multibit(cfg.sbox, cfg.bit))
}

/// [`recover_subkey_multibit_par`] with a live convergence feed: every
/// `cadence` trials (and once at the end) the merged accumulator over
/// trials `0..b` is sampled and handed to `on_snapshot(b, &result)` — the
/// full 64-guess peak vector, so callers can chart key-rank evolution and
/// best-vs-runner-up margin as the campaign runs. `on_trial(i)` fires from
/// the worker that folded trial `i` (unordered, possibly concurrent) for
/// cheap throughput/ETA accounting.
///
/// Snapshots arrive in ascending trial order and are **bit-identical for
/// any `jobs` count** — see `run_sharded_snapshotted` for the merge-order
/// contract. `cadence == 0` emits only the final snapshot. A slow
/// `on_snapshot` backpressures the delivering worker rather than buffering
/// unboundedly.
///
/// # Panics
///
/// Panics if the configuration is out of range or `samples == 0`.
pub fn recover_subkey_multibit_par_snapshotted<F, S, T>(
    oracle: &F,
    cfg: &DpaConfig,
    jobs: Jobs,
    cadence: usize,
    on_snapshot: S,
    on_trial: T,
) -> DpaResult
where
    F: Fn(u64) -> Vec<f64> + Sync,
    S: Fn(usize, &DpaResult) + Sync,
    T: Fn(usize) + Sync,
{
    match recover_subkey_multibit_par_snapshotted_cancellable(
        oracle,
        cfg,
        jobs,
        cadence,
        &CancelToken::new(),
        on_snapshot,
        on_trial,
    ) {
        Ok(result) => result,
        Err(_) => unreachable!("a private never-cancelled token cannot interrupt"),
    }
}

/// [`recover_subkey_multibit_par_snapshotted`] under a cooperative
/// [`CancelToken`]: the token is checked at every trial boundary, and a
/// trip (client cancel, deadline, shutdown) stops the campaign cleanly
/// with a typed [`Interrupted`] carrying the number of fully folded
/// trials. The snapshot stream delivered before the interrupt is a
/// **prefix** of the uninterrupted stream — byte-identical snapshots in
/// the same ascending order — so supervision (emask-serve) can resume the
/// attack later and splice the streams without re-emitting or diverging.
/// A token that trips after the last trial folds has no effect: a
/// completed run is always delivered.
///
/// # Errors
///
/// Returns [`Interrupted`] if the token trips before every trial has been
/// folded and merged.
///
/// # Panics
///
/// Panics if the configuration is out of range or `samples == 0`.
#[allow(clippy::too_many_arguments)]
pub fn recover_subkey_multibit_par_snapshotted_cancellable<F, S, T>(
    oracle: &F,
    cfg: &DpaConfig,
    jobs: Jobs,
    cadence: usize,
    token: &CancelToken,
    on_snapshot: S,
    on_trial: T,
) -> Result<DpaResult, Interrupted>
where
    F: Fn(u64) -> Vec<f64> + Sync,
    S: Fn(usize, &DpaResult) + Sync,
    T: Fn(usize) + Sync,
{
    assert!(cfg.samples > 0, "need at least one sample");
    let proto = OnlineDpa::multibit(cfg.sbox, cfg.bit);
    let seed = cfg.seed;
    let acc = run_sharded_snapshotted_cancellable(
        jobs,
        cfg.samples,
        cadence,
        token,
        || proto.clone(),
        |acc: &mut OnlineDpa, i| {
            let p = plaintext_for(seed, i as u64);
            acc.push(p, &oracle(p)).expect("oracle produced a misaligned trace");
            on_trial(i);
        },
        |a, b| a.merge(b).expect("shards saw traces of different widths"),
        |trials, acc| on_snapshot(trials, &acc.result()),
    )?;
    Ok(acc.unwrap_or(proto).result())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use emask_des::KeySchedule;

    const KEY: u64 = 0x1334_5779_9BBC_DFF1;

    /// A leakage-model oracle: the trace has one sample whose energy is
    /// proportional to the true selection bit, plus deterministic "noise"
    /// elsewhere — the idealized physical device.
    fn leaky_oracle(sbox: usize, bit: usize) -> impl FnMut(u64) -> Vec<f64> {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(sbox);
        move |p: u64| {
            let b = selection_bit(p, subkey, sbox, bit);
            let filler = (p % 17) as f64; // plaintext-correlated clutter
            vec![100.0 + filler, 100.0 + if b { 25.0 } else { 0.0 }, 100.0 - filler]
        }
    }

    /// A perfectly masked oracle: constant energy regardless of data.
    fn flat_oracle(_p: u64) -> Vec<f64> {
        vec![150.0; 3]
    }

    #[test]
    fn selection_bit_matches_golden_first_round() {
        // Against the traced golden model: the selection function under
        // the *true* subkey must equal the actual S-box output bit.
        let ks = KeySchedule::new(KEY);
        let des = emask_des::Des::new(KEY);
        for p in [0u64, 0x0123_4567_89AB_CDEF, 0xFFFF_FFFF_0000_0000] {
            let (_, trace) = des.encrypt_block_traced(p);
            for sbox in 0..8 {
                let subkey = ks.round_key(1).sbox_slice(sbox);
                let sbox_in = ((trace.sbox_in[0] >> (42 - 6 * sbox)) & 0x3F) as u8;
                let s_out = sbox_lookup(sbox, sbox_in);
                for bit in 0..4 {
                    let expect = (s_out >> (3 - bit)) & 1 == 1;
                    assert_eq!(selection_bit(p, subkey, sbox, bit), expect);
                }
            }
        }
    }

    #[test]
    fn dpa_recovers_subkey_from_leaky_device() {
        for sbox in [0usize, 3, 7] {
            let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(sbox);
            let cfg = DpaConfig { samples: 400, sbox, bit: 0, seed: 42 };
            let result = recover_subkey(leaky_oracle(sbox, 0), &cfg);
            assert!(
                result.recovered(subkey, 1.5),
                "S{} expected {subkey:#04X}: {result}",
                sbox + 1
            );
        }
    }

    #[test]
    fn dpa_finds_nothing_on_flat_traces() {
        let cfg = DpaConfig { samples: 200, ..DpaConfig::default() };
        let result = recover_subkey(flat_oracle, &cfg);
        assert!(result.peaks.iter().all(|&p| p < 1e-9), "flat traces must not leak");
        assert!((result.margin - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dpa_peak_lands_on_the_leaky_cycle() {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(0);
        let cfg = DpaConfig { samples: 400, sbox: 0, bit: 0, seed: 7 };
        let result = recover_subkey(leaky_oracle(0, 0), &cfg);
        assert_eq!(result.peak_cycles[subkey as usize], 1, "leak injected at cycle 1");
    }

    #[test]
    fn margin_reflects_sample_count() {
        // More samples → cleaner partition → larger margin.
        let small = recover_subkey(
            leaky_oracle(0, 0),
            &DpaConfig { samples: 50, sbox: 0, bit: 0, seed: 3 },
        );
        let large = recover_subkey(
            leaky_oracle(0, 0),
            &DpaConfig { samples: 800, sbox: 0, bit: 0, seed: 3 },
        );
        assert!(
            large.margin >= small.margin * 0.8,
            "large {} small {}",
            large.margin,
            small.margin
        );
        assert!(large.margin > 1.5);
    }

    #[test]
    fn result_display_mentions_guess() {
        let cfg = DpaConfig { samples: 100, sbox: 0, bit: 0, seed: 9 };
        let r = recover_subkey(leaky_oracle(0, 0), &cfg);
        assert!(r.to_string().contains("best guess"));
    }

    #[test]
    fn progress_counters_see_the_whole_campaign() {
        use crate::progress::ProgressCounters;
        let cfg = DpaConfig { samples: 50, sbox: 0, bit: 0, seed: 11 };
        let mut prog = ProgressCounters::new();
        let result = recover_subkey_with(leaky_oracle(0, 0), &cfg, &mut prog);
        assert_eq!(prog.traces, 50);
        assert_eq!(prog.trace_samples, 50 * 3);
        assert_eq!(prog.guesses, 64);
        assert_eq!(prog.outcome, Some((result.best_guess, result.margin)));
        assert_eq!(prog.leader.map(|(g, _)| g), Some(result.best_guess));
        // A genuine leak converges: far fewer lead changes than guesses.
        assert!(prog.lead_changes < 64);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let cfg = DpaConfig { samples: 0, ..DpaConfig::default() };
        recover_subkey(flat_oracle, &cfg);
    }

    /// The leaky oracle as a `Fn + Sync` closure for the parallel paths.
    fn sync_leaky_oracle(sbox: usize, bit: usize) -> impl Fn(u64) -> Vec<f64> + Sync {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(sbox);
        move |p: u64| {
            let b = selection_bit(p, subkey, sbox, bit);
            let filler = (p % 17) as f64;
            vec![100.0 + filler, 100.0 + if b { 25.0 } else { 0.0 }, 100.0 - filler]
        }
    }

    #[test]
    fn parallel_dpa_recovers_subkey_and_ignores_job_count() {
        let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(0);
        let oracle = sync_leaky_oracle(0, 0);
        let cfg = DpaConfig { samples: 400, sbox: 0, bit: 0, seed: 42 };
        let serial = recover_subkey_par(&oracle, &cfg, Jobs::serial());
        assert!(serial.recovered(subkey, 1.5), "{serial}");
        for jobs in [2usize, 4, 7] {
            let par = recover_subkey_par(&oracle, &cfg, Jobs::new(jobs).unwrap());
            assert_eq!(par, serial, "jobs = {jobs}");
        }
        // The multibit variant wants all four output bits leaking — give it
        // a Hamming-weight oracle and it singles the subkey out sharply.
        let hw_oracle = move |p: u64| {
            let hw: f64 = (0..4).map(|b| f64::from(selection_bit(p, subkey, 0, b))).sum();
            vec![100.0 + (p % 17) as f64, 100.0 + 10.0 * hw]
        };
        let multi = recover_subkey_multibit_par(&hw_oracle, &cfg, Jobs::new(4).unwrap());
        assert!(multi.recovered(subkey, 1.5), "{multi}");
        assert_eq!(multi, recover_subkey_multibit_par(&hw_oracle, &cfg, Jobs::new(7).unwrap()));
    }

    /// The snapshot stream of a run as comparable bytes: `(trials,
    /// best_guess, margin bits, peak bits)` per snapshot.
    fn snapshot_stream(
        cfg: &DpaConfig,
        jobs: usize,
        cadence: usize,
    ) -> Vec<(usize, u8, u64, Vec<u64>)> {
        let oracle = sync_leaky_oracle(0, 0);
        let log = std::sync::Mutex::new(Vec::new());
        recover_subkey_multibit_par_snapshotted(
            &oracle,
            cfg,
            Jobs::new(jobs).unwrap(),
            cadence,
            |trials, r: &DpaResult| {
                log.lock().unwrap().push((
                    trials,
                    r.best_guess,
                    r.margin.to_bits(),
                    r.peaks.iter().map(|p| p.to_bits()).collect(),
                ));
            },
            |_| {},
        );
        log.into_inner().unwrap()
    }

    #[test]
    fn snapshotted_dpa_matches_plain_parallel_run_and_any_job_count() {
        let oracle = sync_leaky_oracle(0, 0);
        let cfg = DpaConfig { samples: 160, sbox: 0, bit: 0, seed: 42 };
        let plain = recover_subkey_multibit_par(&oracle, &cfg, Jobs::new(4).unwrap());
        let snapped = recover_subkey_multibit_par_snapshotted(
            &oracle,
            &cfg,
            Jobs::new(4).unwrap(),
            50,
            |_, _| {},
            |_| {},
        );
        assert_eq!(snapped, plain, "snapshotting must not perturb the verdict");

        let serial = snapshot_stream(&cfg, 1, 50);
        // Boundaries 50, 100, 150, and the final 160, in ascending order.
        assert_eq!(serial.iter().map(|s| s.0).collect::<Vec<_>>(), vec![50, 100, 150, 160]);
        for jobs in [4usize, 7] {
            assert_eq!(snapshot_stream(&cfg, jobs, 50), serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn uncancelled_snapshotted_cancellable_dpa_is_bit_identical() {
        let oracle = sync_leaky_oracle(0, 0);
        let cfg = DpaConfig { samples: 160, sbox: 0, bit: 0, seed: 42 };
        let plain = recover_subkey_multibit_par_snapshotted(
            &oracle,
            &cfg,
            Jobs::new(4).unwrap(),
            50,
            |_, _| {},
            |_| {},
        );
        let token = CancelToken::new();
        let cancellable = recover_subkey_multibit_par_snapshotted_cancellable(
            &oracle,
            &cfg,
            Jobs::new(4).unwrap(),
            50,
            &token,
            |_, _| {},
            |_| {},
        )
        .expect("untripped token never interrupts");
        assert_eq!(cancellable, plain, "cancellable harness must be bit-identical");
    }

    #[test]
    fn cancelled_snapshotted_dpa_streams_a_prefix_then_interrupts() {
        let cfg = DpaConfig { samples: 160, sbox: 0, bit: 0, seed: 42 };
        let full = snapshot_stream(&cfg, 1, 50);
        let oracle = sync_leaky_oracle(0, 0);
        let token = CancelToken::new();
        let log = std::sync::Mutex::new(Vec::new());
        let err = recover_subkey_multibit_par_snapshotted_cancellable(
            &oracle,
            &cfg,
            Jobs::new(1).unwrap(),
            50,
            &token,
            |trials, r: &DpaResult| {
                log.lock().unwrap().push((
                    trials,
                    r.best_guess,
                    r.margin.to_bits(),
                    r.peaks.iter().map(|p| p.to_bits()).collect::<Vec<u64>>(),
                ));
                if trials == 50 {
                    token.cancel(emask_par::CancelReason::Cancelled);
                }
            },
            |_| {},
        )
        .expect_err("a token tripped mid-run must interrupt");
        assert_eq!(err.reason, emask_par::CancelReason::Cancelled);
        let emitted = log.into_inner().unwrap();
        assert!(!emitted.is_empty());
        assert_eq!(
            emitted.as_slice(),
            &full[..emitted.len()],
            "interrupted stream must be a bit-identical prefix of the full one"
        );
    }

    #[test]
    fn snapshotted_dpa_last_snapshot_is_the_final_verdict() {
        let oracle = sync_leaky_oracle(0, 0);
        let cfg = DpaConfig { samples: 120, sbox: 0, bit: 0, seed: 9 };
        let last = std::sync::Mutex::new(None);
        let trials_seen = std::sync::atomic::AtomicUsize::new(0);
        let result = recover_subkey_multibit_par_snapshotted(
            &oracle,
            &cfg,
            Jobs::new(2).unwrap(),
            0, // final-only cadence
            |trials, r: &DpaResult| {
                *last.lock().unwrap() = Some((trials, r.clone()));
            },
            |_| {
                trials_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            },
        );
        let (trials, snap) = last.into_inner().unwrap().expect("final snapshot fired");
        assert_eq!(trials, 120);
        assert_eq!(snap, result);
        assert_eq!(trials_seen.into_inner(), 120, "on_trial fires once per trial");
    }

    #[test]
    fn parallel_collection_is_in_trial_order_for_any_job_count() {
        let oracle = |p: u64| vec![(p % 251) as f64];
        let (p1, t1) = collect_traces_par(&oracle, 100, 7, Jobs::serial());
        let (p4, t4) = collect_traces_par(&oracle, 100, 7, Jobs::new(4).unwrap());
        assert_eq!(p1, p4);
        assert_eq!(t1, t4);
        assert_eq!(p1[3], plaintext_for(7, 3));
    }
}
