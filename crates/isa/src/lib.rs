//! # emask-isa — the smart-card processor's instruction set
//!
//! A 32-bit MIPS-like RISC instruction set in the spirit of the integer
//! subset of the SimpleScalar PISA used by the paper ("its ISA is
//! representative of current embedded 32-bit RISC cores used in smart cards
//! such as the ARM7-TDMI").
//!
//! The paper's architectural contribution is a **secure bit** carried by
//! selected instructions: a secure load/store/XOR/shift/indexing operation
//! activates the dual-rail pre-charged data path so its energy is
//! data-independent. Following the paper's implementation choice
//! ("augmenting the original opcodes with an additional secure bit ... to
//! minimize the impact on the decoding logic"), every [`Instruction`] here
//! carries a [`secure`](Instruction::secure) flag, and the binary encoding
//! reserves bit 31 for it.
//!
//! The crate provides:
//!
//! * [`Reg`] — architectural register names with MIPS conventions,
//! * [`Op`] / [`Instruction`] — the instruction model with classification
//!   helpers used by the pipeline and the energy model,
//! * [`mod@encode`] — binary encode/decode (round-trip tested),
//! * [`asm`] — a two-pass assembler with labels, `.data` directives, the
//!   paper's secure mnemonics (`slw`, `ssw`, `sxor`, ...), and the usual
//!   pseudo-instructions (`li`, `la`, `move`, `b`, `blt`, ...),
//! * [`Program`] — an assembled text + data image with a symbol table.
//!
//! ## Example
//!
//! ```
//! use emask_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .data
//! value:  .word 42
//!     .text
//! main:   la   $t0, value
//!         slw  $t1, 0($t0)      # secure load: dual-rail data path
//!         addiu $t1, $t1, 1
//!         halt
//! "#,
//! )?;
//! // `la` expands to lui+ori, so the secure load is instruction 2.
//! assert!(program.text[2].secure);
//! # Ok::<(), emask_isa::asm::AssembleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod asm;
pub mod encode;
pub mod inst;
pub mod program;
pub mod reg;

pub use asm::{assemble, AssembleError};
pub use encode::{decode, disassemble, encode, DecodeError};
pub use inst::{Instruction, Op, OpClass};
pub use program::Program;
pub use reg::Reg;
