//! Assembled program images: text, initial data memory, and symbols.

use crate::encode::encode;
use crate::inst::Instruction;
use std::collections::HashMap;
use std::fmt;

/// Default base byte address of the `.data` segment.
pub const DATA_BASE: u32 = 0x1000;

/// Default size of the simulated data memory in bytes (32 KiB).
pub const MEM_SIZE: u32 = 0x8000;

/// Default initial stack pointer (top of data memory, 16-byte aligned).
pub const STACK_TOP: u32 = MEM_SIZE - 16;

/// Where an assembled symbol points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// An instruction index in the text segment.
    Text(u32),
    /// A byte address in the data segment.
    Data(u32),
}

impl Symbol {
    /// The raw address value: instruction index or byte address.
    pub fn value(self) -> u32 {
        match self {
            Symbol::Text(v) | Symbol::Data(v) => v,
        }
    }
}

/// An assembled program: decoded text, an initial data image, and the
/// symbol table.
///
/// The machine is a Harvard architecture — instruction memory is indexed by
/// instruction, data memory is byte-addressed starting at 0 with the
/// assembled `.data` contents placed at [`DATA_BASE`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions, indexed by PC.
    pub text: Vec<Instruction>,
    /// Initial contents of data memory from byte address [`DATA_BASE`],
    /// one word per element.
    pub data: Vec<u32>,
    /// Label → location map.
    pub symbols: HashMap<String, Symbol>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a symbol.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name).copied()
    }

    /// The byte address of a data symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is missing or is a text symbol — intended for
    /// tests and harness code where the label is known to exist.
    /// CLI-reachable callers should use [`Program::try_data_addr`].
    pub fn data_addr(&self, name: &str) -> u32 {
        match self.symbol(name) {
            Some(Symbol::Data(a)) => a,
            other => panic!("`{name}` is not a data symbol (found {other:?})"),
        }
    }

    /// The byte address of a data symbol, or `None` if the symbol is
    /// missing or names a text location — the non-panicking counterpart of
    /// [`Program::data_addr`] for fallible (CLI-reachable) paths.
    pub fn try_data_addr(&self, name: &str) -> Option<u32> {
        match self.symbol(name) {
            Some(Symbol::Data(a)) => Some(a),
            _ => None,
        }
    }

    /// The instruction index of a text symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is missing or is a data symbol.
    pub fn text_addr(&self, name: &str) -> u32 {
        match self.symbol(name) {
            Some(Symbol::Text(a)) => a,
            other => panic!("`{name}` is not a text symbol (found {other:?})"),
        }
    }

    /// Encodes the text segment to binary words.
    pub fn encode_text(&self) -> Vec<u32> {
        self.text.iter().map(encode).collect()
    }

    /// Number of instructions carrying the secure bit.
    pub fn secure_instruction_count(&self) -> usize {
        self.text.iter().filter(|i| i.secure).count()
    }

    /// A full disassembly listing with instruction indices and text labels.
    pub fn listing(&self) -> String {
        let mut by_index: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, sym) in &self.symbols {
            if let Symbol::Text(i) = sym {
                by_index.entry(*i).or_default().push(name);
            }
        }
        let mut out = String::new();
        for (i, inst) in self.text.iter().enumerate() {
            if let Some(labels) = by_index.get(&(i as u32)) {
                for label in labels {
                    out.push_str(label);
                    out.push_str(":\n");
                }
            }
            out.push_str(&format!("{i:6}  {inst}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program({} instructions, {} secure, {} data words, {} symbols)",
            self.text.len(),
            self.secure_instruction_count(),
            self.data.len(),
            self.symbols.len()
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::inst::{Instruction, Op};
    use crate::reg::Reg;

    fn sample() -> Program {
        let mut p = Program::new();
        p.text.push(Instruction::i(Op::Addiu, Reg::T0, Reg::Zero, 1));
        p.text.push(Instruction::r(Op::Xor, Reg::T1, Reg::T0, Reg::T0).into_secure());
        p.text.push(Instruction::halt());
        p.data.push(0xDEAD_BEEF);
        p.symbols.insert("main".into(), Symbol::Text(0));
        p.symbols.insert("buf".into(), Symbol::Data(DATA_BASE));
        p
    }

    #[test]
    fn symbol_lookup() {
        let p = sample();
        assert_eq!(p.text_addr("main"), 0);
        assert_eq!(p.data_addr("buf"), DATA_BASE);
        assert!(p.symbol("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "not a data symbol")]
    fn data_addr_rejects_text_symbol() {
        sample().data_addr("main");
    }

    #[test]
    fn secure_count() {
        assert_eq!(sample().secure_instruction_count(), 1);
    }

    #[test]
    fn encoded_text_decodes_back() {
        let p = sample();
        for (word, inst) in p.encode_text().iter().zip(&p.text) {
            assert_eq!(&crate::encode::decode(*word).unwrap(), inst);
        }
    }

    #[test]
    fn listing_contains_labels_and_mnemonics() {
        let l = sample().listing();
        assert!(l.contains("main:"));
        assert!(l.contains("sxor"));
        assert!(l.contains("halt"));
    }

    #[test]
    fn display_summarizes() {
        let s = sample().to_string();
        assert!(s.contains("3 instructions"));
        assert!(s.contains("1 secure"));
    }

    #[test]
    fn stack_top_is_aligned_and_in_memory() {
        // Evaluated through a function so the layout invariants are
        // checked as values, not constant-folded assertions.
        fn check(stack_top: u32, mem_size: u32, data_base: u32) {
            assert_eq!(stack_top % 16, 0);
            assert!(stack_top < mem_size);
            assert!(data_base < stack_top);
        }
        check(STACK_TOP, MEM_SIZE, DATA_BASE);
    }
}
