//! Architectural registers and their MIPS-convention names.

use std::fmt;
use std::str::FromStr;

/// One of the 32 general-purpose registers.
///
/// Register 0 is hard-wired to zero. Conventional names follow the MIPS
/// o32 ABI, which the `emask-cc` code generator also obeys.
///
/// # Examples
///
/// ```
/// use emask_isa::Reg;
/// assert_eq!("$t0".parse::<Reg>()?, Reg::T0);
/// assert_eq!("$8".parse::<Reg>()?, Reg::T0);
/// assert_eq!(Reg::T0.to_string(), "$t0");
/// # Ok::<(), emask_isa::reg::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // the names are the documentation
pub enum Reg {
    Zero = 0,
    At = 1,
    V0 = 2,
    V1 = 3,
    A0 = 4,
    A1 = 5,
    A2 = 6,
    A3 = 7,
    T0 = 8,
    T1 = 9,
    T2 = 10,
    T3 = 11,
    T4 = 12,
    T5 = 13,
    T6 = 14,
    T7 = 15,
    S0 = 16,
    S1 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    T8 = 24,
    T9 = 25,
    K0 = 26,
    K1 = 27,
    Gp = 28,
    Sp = 29,
    Fp = 30,
    Ra = 31,
}

impl Reg {
    /// All registers in numeric order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::At,
        Reg::V0,
        Reg::V1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::T8,
        Reg::T9,
        Reg::K0,
        Reg::K1,
        Reg::Gp,
        Reg::Sp,
        Reg::Fp,
        Reg::Ra,
    ];

    const NAMES: [&'static str; 32] = [
        "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
        "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7", "$t8",
        "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
    ];

    /// The register's 5-bit encoding.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Constructs a register from its 5-bit number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn from_number(n: u8) -> Reg {
        assert!(n < 32, "register number {n} out of range");
        Reg::ALL[n as usize]
    }

    /// True for `$zero`, whose writes are discarded.
    pub fn is_zero(self) -> bool {
        self == Reg::Zero
    }

    /// Caller-saved temporaries available to the register allocator.
    pub fn allocatable_temps() -> &'static [Reg] {
        &[
            Reg::T0,
            Reg::T1,
            Reg::T2,
            Reg::T3,
            Reg::T4,
            Reg::T5,
            Reg::T6,
            Reg::T7,
            Reg::T8,
            Reg::T9,
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
        ]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(Self::NAMES[self.number() as usize])
    }
}

/// Error produced when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { text: s.to_owned() };
        let body = s.strip_prefix('$').ok_or_else(err)?;
        if let Ok(n) = body.parse::<u8>() {
            if n < 32 {
                return Ok(Reg::from_number(n));
            }
            return Err(err());
        }
        Reg::NAMES
            .iter()
            .position(|&name| &name[1..] == body)
            .map(|i| Reg::from_number(i as u8))
            .ok_or_else(err)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for n in 0..32 {
            assert_eq!(Reg::from_number(n).number(), n);
        }
    }

    #[test]
    fn names_parse_back() {
        for r in Reg::ALL {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        assert_eq!("$0".parse::<Reg>().unwrap(), Reg::Zero);
        assert_eq!("$31".parse::<Reg>().unwrap(), Reg::Ra);
    }

    #[test]
    fn bad_names_rejected() {
        for bad in ["t0", "$t10", "$32", "$", "$xy"] {
            let e = bad.parse::<Reg>().unwrap_err();
            assert!(e.to_string().contains(bad));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_number_rejects_32() {
        Reg::from_number(32);
    }

    #[test]
    fn allocatable_temps_exclude_special_registers() {
        let temps = Reg::allocatable_temps();
        for special in [Reg::Zero, Reg::At, Reg::Sp, Reg::Fp, Reg::Ra, Reg::Gp, Reg::K0, Reg::K1] {
            assert!(!temps.contains(&special));
        }
        assert_eq!(temps.len(), 18);
    }
}
