//! The instruction model: operations, operand fields, the secure bit, and
//! the classification helpers used by the pipeline and the energy model.

use crate::reg::Reg;
use std::fmt;

/// Every operation of the ISA.
///
/// The set mirrors the integer core of the SimpleScalar PISA / MIPS-I:
/// register and immediate ALU ops, immediate shifts, word loads/stores,
/// branches and jumps, plus `halt` to end simulation. `mul`/`div`/`rem`
/// write their destination directly (as in MIPS32 `mul`), which keeps the
/// 5-stage pipeline free of HI/LO side registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // mnemonics are the documentation
pub enum Op {
    // R-type ALU
    Addu,
    Subu,
    And,
    Or,
    Xor,
    Nor,
    Sllv,
    Srlv,
    Srav,
    Slt,
    Sltu,
    Mul,
    Div,
    Rem,
    // I-type ALU
    Addiu,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
    Lui,
    // immediate shifts
    Sll,
    Srl,
    Sra,
    // memory
    Lw,
    Sw,
    // branches
    Beq,
    Bne,
    Blez,
    Bgtz,
    Bltz,
    Bgez,
    // jumps
    J,
    Jal,
    Jr,
    Jalr,
    // misc
    Halt,
}

/// Coarse classification used by the hazard logic and the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Three-register ALU operation.
    AluReg,
    /// Register-immediate ALU operation (including `lui`).
    AluImm,
    /// Shift by immediate amount.
    ShiftImm,
    /// Word load.
    Load,
    /// Word store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`j`, `jal`, `jr`, `jalr`).
    Jump,
    /// End of simulation.
    Halt,
}

impl Op {
    /// The operation's classification.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Addu | Subu | And | Or | Xor | Nor | Sllv | Srlv | Srav | Slt | Sltu | Mul | Div
            | Rem => OpClass::AluReg,
            Addiu | Andi | Ori | Xori | Slti | Sltiu | Lui => OpClass::AluImm,
            Sll | Srl | Sra => OpClass::ShiftImm,
            Lw => OpClass::Load,
            Sw => OpClass::Store,
            Beq | Bne | Blez | Bgtz | Bltz | Bgez => OpClass::Branch,
            J | Jal | Jr | Jalr => OpClass::Jump,
            Halt => OpClass::Halt,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Addu => "addu",
            Subu => "subu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Sllv => "sllv",
            Srlv => "srlv",
            Srav => "srav",
            Slt => "slt",
            Sltu => "sltu",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Addiu => "addiu",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slti => "slti",
            Sltiu => "sltiu",
            Lui => "lui",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Lw => "lw",
            Sw => "sw",
            Beq => "beq",
            Bne => "bne",
            Blez => "blez",
            Bgtz => "bgtz",
            Bltz => "bltz",
            Bgez => "bgez",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Halt => "halt",
        }
    }

    /// The paper's dedicated secure mnemonic, if this operation has one
    /// (`lw → slw`, `sw → ssw`, `xor → sxor`, shifts → `ssll`/`ssrl`/`ssra`,
    /// `xori → sxori`). Other operations render as `sec.<mnemonic>`.
    pub fn secure_mnemonic(self) -> Option<&'static str> {
        use Op::*;
        match self {
            Lw => Some("slw"),
            Sw => Some("ssw"),
            Xor => Some("sxor"),
            Xori => Some("sxori"),
            Sll => Some("ssll"),
            Srl => Some("ssrl"),
            Sra => Some("ssra"),
            Sllv => Some("ssllv"),
            Srlv => Some("ssrlv"),
            Addu => Some("saddu"),
            _ => None,
        }
    }

    /// Whether the operation's immediate field is zero-extended (logical
    /// immediates and `lui`'s raw upper half) rather than sign-extended.
    pub fn zero_extends_imm(self) -> bool {
        matches!(self, Op::Andi | Op::Ori | Op::Xori | Op::Lui)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One decoded instruction.
///
/// Field use by format:
///
/// * R-type: `rd = op(rs, rt)`; immediate shifts use `imm` as the shift
///   amount and read only `rt` (as in MIPS `sll rd, rt, shamt`).
/// * I-type: `rt = op(rs, imm)`; loads `rt = mem[rs + imm]`; stores
///   `mem[rs + imm] = rt`; branches compare `rs` (and `rt`) and jump by
///   `imm` words relative to the next instruction.
/// * J-type: `target` is an absolute instruction index.
///
/// The [`secure`](Self::secure) flag selects the dual-rail pre-charged data
/// path for this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub op: Op,
    /// Destination register (R-type) — `$zero` when unused.
    pub rd: Reg,
    /// First source register — `$zero` when unused.
    pub rs: Reg,
    /// Second source / I-type destination register — `$zero` when unused.
    pub rt: Reg,
    /// Immediate: 16-bit constant, branch word offset, or shift amount.
    pub imm: i32,
    /// Absolute instruction index for `j`/`jal`.
    pub target: u32,
    /// Secure bit: run this instruction on the dual-rail pre-charged path.
    pub secure: bool,
}

impl Instruction {
    fn base(op: Op) -> Self {
        Self { op, rd: Reg::Zero, rs: Reg::Zero, rt: Reg::Zero, imm: 0, target: 0, secure: false }
    }

    /// Three-register ALU instruction `rd = op(rs, rt)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an [`OpClass::AluReg`] operation.
    pub fn r(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Self {
        assert_eq!(op.class(), OpClass::AluReg, "{op} is not an R-type ALU op");
        Self { rd, rs, rt, ..Self::base(op) }
    }

    /// Immediate shift `rd = op(rt, shamt)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a shift or `shamt >= 32`.
    pub fn shift(op: Op, rd: Reg, rt: Reg, shamt: u32) -> Self {
        assert_eq!(op.class(), OpClass::ShiftImm, "{op} is not an immediate shift");
        assert!(shamt < 32, "shift amount {shamt} out of range");
        Self { rd, rt, imm: shamt as i32, ..Self::base(op) }
    }

    /// Register-immediate ALU instruction `rt = op(rs, imm)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an [`OpClass::AluImm`] operation or `imm` does
    /// not fit its (sign- or zero-extended) 16-bit field.
    pub fn i(op: Op, rt: Reg, rs: Reg, imm: i32) -> Self {
        assert_eq!(op.class(), OpClass::AluImm, "{op} is not an I-type ALU op");
        assert!(imm_fits(op, imm), "immediate {imm} out of 16-bit range for {op}");
        Self { rt, rs, imm, ..Self::base(op) }
    }

    /// Word load `rt = mem[base + offset]`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in a signed 16-bit field.
    pub fn lw(rt: Reg, offset: i32, base: Reg) -> Self {
        assert!(fits_i16(offset), "offset {offset} out of range");
        Self { rt, rs: base, imm: offset, ..Self::base(Op::Lw) }
    }

    /// Word store `mem[base + offset] = rt`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in a signed 16-bit field.
    pub fn sw(rt: Reg, offset: i32, base: Reg) -> Self {
        assert!(fits_i16(offset), "offset {offset} out of range");
        Self { rt, rs: base, imm: offset, ..Self::base(Op::Sw) }
    }

    /// Conditional branch; `offset` is in instructions relative to the
    /// instruction after the branch.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a branch or `offset` does not fit in 16 bits.
    pub fn branch(op: Op, rs: Reg, rt: Reg, offset: i32) -> Self {
        assert_eq!(op.class(), OpClass::Branch, "{op} is not a branch");
        assert!(fits_i16(offset), "branch offset {offset} out of range");
        Self { rs, rt, imm: offset, ..Self::base(op) }
    }

    /// Absolute jump to instruction index `target`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not `j`/`jal` or `target` exceeds 26 bits.
    pub fn jump(op: Op, target: u32) -> Self {
        assert!(matches!(op, Op::J | Op::Jal), "{op} is not an absolute jump");
        assert!(target < (1 << 26), "jump target {target} out of range");
        Self { target, ..Self::base(op) }
    }

    /// Register jump `jr rs`.
    pub fn jr(rs: Reg) -> Self {
        Self { rs, ..Self::base(Op::Jr) }
    }

    /// Jump-and-link-register `jalr rd, rs`.
    pub fn jalr(rd: Reg, rs: Reg) -> Self {
        Self { rd, rs, ..Self::base(Op::Jalr) }
    }

    /// The canonical no-op (`sll $zero, $zero, 0`).
    pub fn nop() -> Self {
        Self::base(Op::Sll)
    }

    /// End of simulation.
    pub fn halt() -> Self {
        Self::base(Op::Halt)
    }

    /// Returns the same instruction with the secure bit set.
    pub fn into_secure(self) -> Self {
        Self { secure: true, ..self }
    }

    /// Returns the same instruction with the secure bit as given.
    pub fn with_secure(self, secure: bool) -> Self {
        Self { secure, ..self }
    }

    /// The operation's classification.
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// The register written by this instruction, if any (never `$zero`).
    pub fn dest(&self) -> Option<Reg> {
        use OpClass::*;
        let r = match self.class() {
            AluReg | ShiftImm => self.rd,
            AluImm | Load => self.rt,
            Jump => match self.op {
                Op::Jal => Reg::Ra,
                Op::Jalr => self.rd,
                _ => return None,
            },
            Store | Branch | Halt => return None,
        };
        (!r.is_zero()).then_some(r)
    }

    /// The registers read by this instruction, in (first, second) order.
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        use OpClass::*;
        match self.class() {
            AluReg => (Some(self.rs), Some(self.rt)),
            AluImm => {
                if self.op == Op::Lui {
                    (None, None)
                } else {
                    (Some(self.rs), None)
                }
            }
            ShiftImm => (None, Some(self.rt)),
            Load => (Some(self.rs), None),
            Store => (Some(self.rs), Some(self.rt)),
            Branch => match self.op {
                Op::Beq | Op::Bne => (Some(self.rs), Some(self.rt)),
                _ => (Some(self.rs), None),
            },
            Jump => match self.op {
                Op::Jr | Op::Jalr => (Some(self.rs), None),
                _ => (None, None),
            },
            Halt => (None, None),
        }
    }

    /// True for `lw` (secure or not).
    pub fn is_load(&self) -> bool {
        self.class() == OpClass::Load
    }

    /// True for `sw` (secure or not).
    pub fn is_store(&self) -> bool {
        self.class() == OpClass::Store
    }

    /// True if the instruction may redirect control flow.
    pub fn changes_control_flow(&self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }

    /// True for the canonical no-op encoding.
    pub fn is_nop(&self) -> bool {
        self.op == Op::Sll && self.rd.is_zero() && self.rt.is_zero() && self.imm == 0
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mnem: String = if self.secure {
            match self.op.secure_mnemonic() {
                Some(m) => m.to_owned(),
                None => format!("sec.{}", self.op.mnemonic()),
            }
        } else {
            self.op.mnemonic().to_owned()
        };
        if self.is_nop() && !self.secure {
            return f.write_str("nop");
        }
        use OpClass::*;
        match self.class() {
            AluReg => write!(f, "{mnem} {}, {}, {}", self.rd, self.rs, self.rt),
            ShiftImm => write!(f, "{mnem} {}, {}, {}", self.rd, self.rt, self.imm),
            AluImm => {
                if self.op == Op::Lui {
                    write!(f, "{mnem} {}, {}", self.rt, self.imm)
                } else {
                    write!(f, "{mnem} {}, {}, {}", self.rt, self.rs, self.imm)
                }
            }
            Load | Store => write!(f, "{mnem} {}, {}({})", self.rt, self.imm, self.rs),
            Branch => match self.op {
                Op::Beq | Op::Bne => {
                    write!(f, "{mnem} {}, {}, {}", self.rs, self.rt, self.imm)
                }
                _ => write!(f, "{mnem} {}, {}", self.rs, self.imm),
            },
            Jump => match self.op {
                Op::J | Op::Jal => write!(f, "{mnem} {}", self.target),
                Op::Jr => write!(f, "{mnem} {}", self.rs),
                Op::Jalr => write!(f, "{mnem} {}, {}", self.rd, self.rs),
                _ => unreachable!(),
            },
            Halt => f.write_str(&mnem),
        }
    }
}

fn fits_i16(v: i32) -> bool {
    (-(1 << 15)..(1 << 15)).contains(&v)
}

fn imm_fits(op: Op, v: i32) -> bool {
    if op.zero_extends_imm() {
        (0..(1 << 16)).contains(&v)
    } else {
        fits_i16(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn dest_of_alu_forms() {
        let add = Instruction::r(Op::Addu, Reg::T0, Reg::T1, Reg::T2);
        assert_eq!(add.dest(), Some(Reg::T0));
        let addi = Instruction::i(Op::Addiu, Reg::T3, Reg::T1, 5);
        assert_eq!(addi.dest(), Some(Reg::T3));
        let sll = Instruction::shift(Op::Sll, Reg::T4, Reg::T1, 2);
        assert_eq!(sll.dest(), Some(Reg::T4));
    }

    #[test]
    fn writes_to_zero_are_no_dest() {
        let i = Instruction::r(Op::Addu, Reg::Zero, Reg::T1, Reg::T2);
        assert_eq!(i.dest(), None);
        assert!(Instruction::nop().dest().is_none());
    }

    #[test]
    fn load_store_sources_and_dest() {
        let lw = Instruction::lw(Reg::T0, 8, Reg::Sp);
        assert_eq!(lw.dest(), Some(Reg::T0));
        assert_eq!(lw.sources(), (Some(Reg::Sp), None));
        let sw = Instruction::sw(Reg::T0, 8, Reg::Sp);
        assert_eq!(sw.dest(), None);
        assert_eq!(sw.sources(), (Some(Reg::Sp), Some(Reg::T0)));
    }

    #[test]
    fn jal_writes_ra() {
        assert_eq!(Instruction::jump(Op::Jal, 10).dest(), Some(Reg::Ra));
        assert_eq!(Instruction::jump(Op::J, 10).dest(), None);
        assert_eq!(Instruction::jalr(Reg::T9, Reg::T0).dest(), Some(Reg::T9));
    }

    #[test]
    fn branch_sources() {
        let beq = Instruction::branch(Op::Beq, Reg::T0, Reg::T1, -3);
        assert_eq!(beq.sources(), (Some(Reg::T0), Some(Reg::T1)));
        let bltz = Instruction::branch(Op::Bltz, Reg::T0, Reg::Zero, 4);
        assert_eq!(bltz.sources(), (Some(Reg::T0), None));
    }

    #[test]
    fn secure_bit_round_trips() {
        let i = Instruction::lw(Reg::T0, 0, Reg::T1).into_secure();
        assert!(i.secure);
        assert!(!i.with_secure(false).secure);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instruction::r(Op::Xor, Reg::T0, Reg::T1, Reg::T2).to_string(),
            "xor $t0, $t1, $t2"
        );
        assert_eq!(
            Instruction::r(Op::Xor, Reg::T0, Reg::T1, Reg::T2).into_secure().to_string(),
            "sxor $t0, $t1, $t2"
        );
        assert_eq!(Instruction::lw(Reg::T3, -4, Reg::Sp).to_string(), "lw $t3, -4($sp)");
        assert_eq!(
            Instruction::lw(Reg::T3, -4, Reg::Sp).into_secure().to_string(),
            "slw $t3, -4($sp)"
        );
        assert_eq!(Instruction::nop().to_string(), "nop");
        assert_eq!(Instruction::halt().to_string(), "halt");
        assert_eq!(
            Instruction::r(Op::Subu, Reg::T0, Reg::T1, Reg::T2).into_secure().to_string(),
            "sec.subu $t0, $t1, $t2"
        );
    }

    #[test]
    fn nop_is_canonical_sll() {
        let nop = Instruction::nop();
        assert!(nop.is_nop());
        assert_eq!(nop.op, Op::Sll);
        assert!(!Instruction::shift(Op::Sll, Reg::T0, Reg::T0, 0).is_nop());
    }

    #[test]
    #[should_panic(expected = "not an R-type")]
    fn r_constructor_rejects_itype() {
        Instruction::r(Op::Addiu, Reg::T0, Reg::T1, Reg::T2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shift_amount_bounds_checked() {
        Instruction::shift(Op::Sll, Reg::T0, Reg::T1, 32);
    }

    #[test]
    #[should_panic(expected = "out of 16-bit range")]
    fn andi_rejects_negative_imm() {
        Instruction::i(Op::Andi, Reg::T0, Reg::T1, -1);
    }

    #[test]
    fn andi_accepts_full_unsigned_range() {
        let i = Instruction::i(Op::Andi, Reg::T0, Reg::T1, 0xFFFF);
        assert_eq!(i.imm, 0xFFFF);
    }

    #[test]
    fn classes_cover_all_ops() {
        use Op::*;
        for op in [
            Addu, Subu, And, Or, Xor, Nor, Sllv, Srlv, Srav, Slt, Sltu, Mul, Div, Rem, Addiu, Andi,
            Ori, Xori, Slti, Sltiu, Lui, Sll, Srl, Sra, Lw, Sw, Beq, Bne, Blez, Bgtz, Bltz, Bgez,
            J, Jal, Jr, Jalr, Halt,
        ] {
            // class() must be total; mnemonics must be unique.
            let _ = op.class();
            assert!(!op.mnemonic().is_empty());
        }
    }
}
