//! Binary instruction encoding.
//!
//! The word layout keeps a MIPS-like shape but reserves the top bit for the
//! paper's secure flag:
//!
//! ```text
//! R-type: [31 secure][30:26 opcode=0][25:21 rs][20:16 rt][15:11 rd][10:6 shamt][5:0 funct]
//! I-type: [31 secure][30:26 opcode  ][25:21 rs][20:16 rt][15:0 imm]
//! J-type: [31 secure][30:26 opcode  ][25:0 target]
//! ```
//!
//! This matches the paper's decision to implement secure instructions "by
//! augmenting the original opcodes with an additional secure bit ... to
//! minimize the impact on the decoding logic": the decoder below is the
//! ordinary decoder plus one bit test.

use crate::inst::{Instruction, Op, OpClass};
use crate::reg::Reg;
use std::fmt;

const SECURE_BIT: u32 = 1 << 31;

/// I/J-type opcode numbers (R-type ops share opcode 0 with a funct field).
fn opcode(op: Op) -> u32 {
    use Op::*;
    match op {
        // R-type family.
        Addu | Subu | And | Or | Xor | Nor | Sllv | Srlv | Srav | Slt | Sltu | Mul | Div | Rem
        | Sll | Srl | Sra | Jr | Jalr | Halt => 0,
        Addiu => 1,
        Andi => 2,
        Ori => 3,
        Xori => 4,
        Slti => 5,
        Sltiu => 6,
        Lui => 7,
        Lw => 8,
        Sw => 9,
        Beq => 10,
        Bne => 11,
        Blez => 12,
        Bgtz => 13,
        Bltz => 14,
        Bgez => 15,
        J => 16,
        Jal => 17,
    }
}

fn funct(op: Op) -> u32 {
    use Op::*;
    match op {
        Sll => 0,
        Srl => 2,
        Sra => 3,
        Sllv => 4,
        Srlv => 6,
        Srav => 7,
        Jr => 8,
        Jalr => 9,
        Halt => 12,
        Addu => 33,
        Subu => 35,
        And => 36,
        Or => 37,
        Xor => 38,
        Nor => 39,
        Slt => 42,
        Sltu => 43,
        Mul => 24,
        Div => 26,
        Rem => 27,
        _ => unreachable!("{op} is not an R-type funct"),
    }
}

fn op_from_funct(f: u32) -> Option<Op> {
    use Op::*;
    Some(match f {
        0 => Sll,
        2 => Srl,
        3 => Sra,
        4 => Sllv,
        6 => Srlv,
        7 => Srav,
        8 => Jr,
        9 => Jalr,
        12 => Halt,
        33 => Addu,
        35 => Subu,
        36 => And,
        37 => Or,
        38 => Xor,
        39 => Nor,
        42 => Slt,
        43 => Sltu,
        24 => Mul,
        26 => Div,
        27 => Rem,
        _ => return None,
    })
}

fn op_from_opcode(o: u32) -> Option<Op> {
    use Op::*;
    Some(match o {
        1 => Addiu,
        2 => Andi,
        3 => Ori,
        4 => Xori,
        5 => Slti,
        6 => Sltiu,
        7 => Lui,
        8 => Lw,
        9 => Sw,
        10 => Beq,
        11 => Bne,
        12 => Blez,
        13 => Bgtz,
        14 => Bltz,
        15 => Bgez,
        16 => J,
        17 => Jal,
        _ => return None,
    })
}

/// Encodes one instruction to its 32-bit word.
pub fn encode(inst: &Instruction) -> u32 {
    let sec = if inst.secure { SECURE_BIT } else { 0 };
    let rs = u32::from(inst.rs.number());
    let rt = u32::from(inst.rt.number());
    let rd = u32::from(inst.rd.number());
    match inst.class() {
        OpClass::AluReg => sec | (rs << 21) | (rt << 16) | (rd << 11) | funct(inst.op),
        OpClass::ShiftImm => {
            sec | (rt << 16) | (rd << 11) | (((inst.imm as u32) & 0x1F) << 6) | funct(inst.op)
        }
        OpClass::AluImm | OpClass::Load | OpClass::Store | OpClass::Branch => {
            sec | (opcode(inst.op) << 26) | (rs << 21) | (rt << 16) | ((inst.imm as u32) & 0xFFFF)
        }
        OpClass::Jump => match inst.op {
            Op::J | Op::Jal => sec | (opcode(inst.op) << 26) | (inst.target & 0x03FF_FFFF),
            Op::Jr => sec | (rs << 21) | funct(Op::Jr),
            Op::Jalr => sec | (rs << 21) | (rd << 11) | funct(Op::Jalr),
            _ => unreachable!(),
        },
        OpClass::Halt => sec | funct(Op::Halt),
    }
}

/// Error returned by [`decode`] for words that are not valid encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010X}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a 32-bit word back into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or funct field is unassigned.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let secure = word & SECURE_BIT != 0;
    let opc = (word >> 26) & 0x1F;
    let rs = Reg::from_number(((word >> 21) & 0x1F) as u8);
    let rt = Reg::from_number(((word >> 16) & 0x1F) as u8);
    let err = DecodeError { word };
    let inst = if opc == 0 {
        let rd = Reg::from_number(((word >> 11) & 0x1F) as u8);
        let shamt = (word >> 6) & 0x1F;
        let op = op_from_funct(word & 0x3F).ok_or(err)?;
        match op.class() {
            OpClass::AluReg => Instruction::r(op, rd, rs, rt),
            OpClass::ShiftImm => Instruction::shift(op, rd, rt, shamt),
            OpClass::Jump if op == Op::Jr => Instruction::jr(rs),
            OpClass::Jump => Instruction::jalr(rd, rs),
            OpClass::Halt => Instruction::halt(),
            _ => return Err(err),
        }
    } else {
        let op = op_from_opcode(opc).ok_or(err)?;
        let raw = word & 0xFFFF;
        let imm = if op.zero_extends_imm() { raw as i32 } else { i32::from(raw as u16 as i16) };
        match op.class() {
            OpClass::AluImm => Instruction::i(op, rt, rs, imm),
            OpClass::Load => Instruction::lw(rt, imm, rs),
            OpClass::Store => Instruction::sw(rt, imm, rs),
            OpClass::Branch => Instruction::branch(op, rs, rt, imm),
            OpClass::Jump => Instruction::jump(op, word & 0x03FF_FFFF),
            _ => return Err(err),
        }
    };
    Ok(inst.with_secure(secure))
}

/// Decodes a whole text segment, reporting the index of the first bad
/// word.
///
/// # Errors
///
/// Returns `(index, DecodeError)` for the first undecodable word.
pub fn disassemble(words: &[u32]) -> Result<Vec<Instruction>, (usize, DecodeError)> {
    words.iter().enumerate().map(|(i, &w)| decode(w).map_err(|e| (i, e))).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_instructions() -> Vec<Instruction> {
        use Op::*;
        vec![
            Instruction::r(Addu, Reg::T0, Reg::T1, Reg::T2),
            Instruction::r(Xor, Reg::S3, Reg::A0, Reg::V1).into_secure(),
            Instruction::r(Mul, Reg::T7, Reg::T8, Reg::T9),
            Instruction::shift(Sll, Reg::T0, Reg::T1, 31),
            Instruction::shift(Sra, Reg::T0, Reg::T1, 1).into_secure(),
            Instruction::i(Addiu, Reg::Sp, Reg::Sp, -32),
            Instruction::i(Andi, Reg::T0, Reg::T1, 0xFFFF),
            Instruction::i(Lui, Reg::T0, Reg::Zero, 0x7FFF),
            Instruction::lw(Reg::T0, -4, Reg::Sp),
            Instruction::lw(Reg::T0, 1024, Reg::Gp).into_secure(),
            Instruction::sw(Reg::Ra, 0, Reg::Sp).into_secure(),
            Instruction::branch(Beq, Reg::T0, Reg::T1, -100),
            Instruction::branch(Bgez, Reg::A0, Reg::Zero, 7),
            Instruction::jump(J, 0x03FF_FFFF),
            Instruction::jump(Jal, 42),
            Instruction::jr(Reg::Ra),
            Instruction::jalr(Reg::Ra, Reg::T9),
            Instruction::nop(),
            Instruction::halt(),
        ]
    }

    #[test]
    fn round_trip_samples() {
        for inst in sample_instructions() {
            let word = encode(&inst);
            assert_eq!(decode(word).unwrap(), inst, "{inst}");
        }
    }

    #[test]
    fn secure_bit_is_bit_31() {
        let plain = encode(&Instruction::lw(Reg::T0, 0, Reg::T1));
        let secure = encode(&Instruction::lw(Reg::T0, 0, Reg::T1).into_secure());
        assert_eq!(secure, plain | 0x8000_0000);
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(encode(&Instruction::nop()), 0);
        assert!(decode(0).unwrap().is_nop());
    }

    #[test]
    fn unknown_funct_rejected() {
        let e = decode(0x3F).unwrap_err(); // funct 63 unassigned
        assert!(e.to_string().contains("0x0000003F"));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(decode(31 << 26).is_err());
    }

    #[test]
    fn disassemble_round_trips_a_program() {
        let insts = sample_instructions();
        let words: Vec<u32> = insts.iter().map(encode).collect();
        assert_eq!(disassemble(&words).unwrap(), insts);
    }

    #[test]
    fn disassemble_reports_bad_word_position() {
        let words = vec![encode(&Instruction::nop()), 0x3F, encode(&Instruction::halt())];
        let (i, e) = disassemble(&words).unwrap_err();
        assert_eq!(i, 1);
        assert_eq!(e.word, 0x3F);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        let inst = Instruction::i(Op::Addiu, Reg::T0, Reg::T1, -1);
        assert_eq!(decode(encode(&inst)).unwrap().imm, -1);
    }

    #[test]
    fn logical_immediates_zero_extend() {
        let inst = Instruction::i(Op::Ori, Reg::T0, Reg::T1, 0x8000);
        assert_eq!(decode(encode(&inst)).unwrap().imm, 0x8000);
    }

    proptest! {
        #[test]
        fn random_r_type_round_trips(
            rd in 0u8..32, rs in 0u8..32, rt in 0u8..32, secure: bool,
            op_idx in 0usize..14,
        ) {
            use Op::*;
            let ops = [Addu, Subu, And, Or, Xor, Nor, Sllv, Srlv, Srav, Slt, Sltu, Mul, Div, Rem];
            let inst = Instruction::r(
                ops[op_idx],
                Reg::from_number(rd),
                Reg::from_number(rs),
                Reg::from_number(rt),
            )
            .with_secure(secure);
            prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
        }

        #[test]
        fn random_loads_round_trip(rt in 0u8..32, rs in 0u8..32, off in -32768i32..32768, secure: bool) {
            let inst = Instruction::lw(Reg::from_number(rt), off, Reg::from_number(rs))
                .with_secure(secure);
            prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
        }

        #[test]
        fn random_branches_round_trip(rs in 0u8..32, rt in 0u8..32, off in -32768i32..32768) {
            let inst = Instruction::branch(Op::Bne, Reg::from_number(rs), Reg::from_number(rt), off);
            prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
        }

        #[test]
        fn decode_never_panics(word: u32) {
            let _ = decode(word);
        }
    }
}
