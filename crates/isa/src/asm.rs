//! A two-pass assembler for the emask ISA.
//!
//! Supported syntax:
//!
//! * one instruction, label, or directive per line; `#` comments;
//! * directives `.text`, `.data`, `.word v, ...`, `.space bytes`,
//!   `.align pow2`;
//! * labels `name:` in either segment;
//! * all hardware mnemonics of [`crate::inst::Op`];
//! * secure forms: the paper's dedicated mnemonics (`slw`, `ssw`, `sxor`,
//!   `sxori`, `ssll`, `ssrl`, `ssra`, `ssllv`, `ssrlv`, `saddu`, `smove`)
//!   and a generic `sec.` prefix on any mnemonic;
//! * pseudo-instructions `nop`, `move`, `li`, `la`, `b`, `not`, `neg`,
//!   `blt`, `bgt`, `ble`, `bge` (signed, expanded through `$at`).
//!
//! Branches take label operands and are encoded as word offsets relative to
//! the following instruction; `j`/`jal` take labels encoded as absolute
//! instruction indices.

use crate::inst::{Instruction, Op, OpClass};
use crate::program::{Program, Symbol, DATA_BASE};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Error raised during assembly, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AssembleError {}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AssembleError`] for syntax errors, unknown mnemonics or
/// registers, out-of-range immediates, duplicate labels, and undefined
/// symbols.
///
/// # Examples
///
/// ```
/// use emask_isa::asm::assemble;
/// let p = assemble(".text\nstart: li $t0, 7\n b start\n halt\n")?;
/// assert_eq!(p.text_addr("start"), 0);
/// # Ok::<(), emask_isa::asm::AssembleError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AssembleError> {
    Assembler::new().run(source)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

struct Assembler {
    symbols: HashMap<String, Symbol>,
}

/// A parsed, label-bearing source line retained for pass 2.
struct PendingInst<'a> {
    line_no: usize,
    mnemonic: &'a str,
    secure: bool,
    operands: Vec<&'a str>,
    /// Instruction index where this (possibly multi-instruction) item
    /// starts.
    index: u32,
}

impl Assembler {
    fn new() -> Self {
        Self { symbols: HashMap::new() }
    }

    fn run(mut self, source: &str) -> Result<Program, AssembleError> {
        let mut segment = Segment::Text;
        let mut text_index: u32 = 0;
        let mut data_offset: u32 = 0; // bytes past DATA_BASE
        let mut pending: Vec<PendingInst<'_>> = Vec::new();
        let mut data_items: Vec<(usize, u32, Vec<&str>)> = Vec::new(); // (line, offset, words)

        // Pass 1: labels, sizes, data layout.
        for (i, raw) in source.lines().enumerate() {
            let line_no = i + 1;
            let mut line = raw;
            if let Some(pos) = line.find('#') {
                line = &line[..pos];
            }
            let mut line = line.trim();
            // Leading labels (possibly several on one line).
            while let Some(colon) = line.find(':') {
                let (label, rest) = line.split_at(colon);
                let label = label.trim();
                if !is_ident(label) {
                    break;
                }
                let sym = match segment {
                    Segment::Text => Symbol::Text(text_index),
                    Segment::Data => Symbol::Data(DATA_BASE + data_offset),
                };
                if self.symbols.insert(label.to_owned(), sym).is_some() {
                    return Err(err(line_no, format!("duplicate label `{label}`")));
                }
                line = rest[1..].trim();
            }
            if line.is_empty() {
                continue;
            }
            if let Some(directive) = line.strip_prefix('.') {
                let (name, args) = split_first_word(directive);
                match name {
                    "text" => segment = Segment::Text,
                    "data" => segment = Segment::Data,
                    "word" => {
                        if segment != Segment::Data {
                            return Err(err(line_no, ".word outside .data".into()));
                        }
                        let values: Vec<&str> =
                            args.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                        if values.is_empty() {
                            return Err(err(line_no, ".word needs at least one value".into()));
                        }
                        data_items.push((line_no, data_offset, values.clone()));
                        data_offset += 4 * values.len() as u32;
                    }
                    "space" => {
                        let n = parse_imm(args.trim()).map_err(|m| err(line_no, m))? as u32;
                        if !n.is_multiple_of(4) {
                            return Err(err(line_no, ".space must be word-aligned".into()));
                        }
                        data_items.push((line_no, data_offset, vec![]));
                        data_offset += n;
                    }
                    "align" => {
                        let p = parse_imm(args.trim()).map_err(|m| err(line_no, m))?;
                        if !(0..=16).contains(&p) {
                            return Err(err(line_no, format!("bad alignment {p}")));
                        }
                        let align = 1u32 << p;
                        let addr = DATA_BASE + data_offset;
                        data_offset += (align - addr % align) % align;
                    }
                    "globl" | "global" => {}
                    other => return Err(err(line_no, format!("unknown directive .{other}"))),
                }
                continue;
            }
            if segment != Segment::Text {
                return Err(err(line_no, "instruction outside .text".into()));
            }
            let (raw_mnemonic, rest) = split_first_word(line);
            let (mnemonic, secure) = resolve_secure(raw_mnemonic);
            let operands: Vec<&str> =
                rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
            let size = pseudo_size(mnemonic, &operands)
                .ok_or_else(|| err(line_no, format!("unknown mnemonic `{raw_mnemonic}`")))?;
            pending.push(PendingInst { line_no, mnemonic, secure, operands, index: text_index });
            text_index += size;
        }

        // Materialize data image.
        let mut data = vec![0u32; (data_offset as usize).div_ceil(4)];
        for (line_no, offset, words) in data_items {
            for (k, w) in words.iter().enumerate() {
                let value = parse_imm(w).map_err(|m| err(line_no, m))? as u32;
                data[offset as usize / 4 + k] = value;
            }
        }

        // Pass 2: emit.
        let mut text = Vec::with_capacity(text_index as usize);
        for p in pending {
            let before = text.len() as u32;
            self.emit(&p, &mut text)?;
            debug_assert_eq!(before, p.index, "pass-1 sizing mismatch at line {}", p.line_no);
        }
        Ok(Program { text, data, symbols: self.symbols })
    }

    fn lookup(&self, line: usize, label: &str) -> Result<Symbol, AssembleError> {
        self.symbols
            .get(label)
            .copied()
            .ok_or_else(|| err(line, format!("undefined symbol `{label}`")))
    }

    fn emit(&self, p: &PendingInst<'_>, out: &mut Vec<Instruction>) -> Result<(), AssembleError> {
        let line = p.line_no;
        let ops = &p.operands;
        let need = |n: usize| -> Result<(), AssembleError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("`{}` expects {n} operands, got {}", p.mnemonic, ops.len())))
            }
        };
        let reg = |s: &str| -> Result<Reg, AssembleError> {
            s.parse::<Reg>().map_err(|e| err(line, e.to_string()))
        };
        let imm =
            |s: &str| -> Result<i32, AssembleError> { parse_imm(s).map_err(|m| err(line, m)) };
        let sec = p.secure;
        let push = |out: &mut Vec<Instruction>, i: Instruction| out.push(i.with_secure(sec));

        match p.mnemonic {
            // ---- pseudo-instructions ----
            "nop" => {
                need(0)?;
                push(out, Instruction::nop());
            }
            "move" => {
                need(2)?;
                push(out, Instruction::r(Op::Addu, reg(ops[0])?, reg(ops[1])?, Reg::Zero));
            }
            "not" => {
                need(2)?;
                push(out, Instruction::r(Op::Nor, reg(ops[0])?, reg(ops[1])?, Reg::Zero));
            }
            "neg" => {
                need(2)?;
                push(out, Instruction::r(Op::Subu, reg(ops[0])?, Reg::Zero, reg(ops[1])?));
            }
            "li" => {
                need(2)?;
                let rt = reg(ops[0])?;
                let v = imm(ops[1])?;
                emit_li(out, rt, v, sec);
            }
            "la" => {
                need(2)?;
                let rt = reg(ops[0])?;
                let addr = self.lookup(line, ops[1])?.value();
                push(out, Instruction::i(Op::Lui, rt, Reg::Zero, (addr >> 16) as i32));
                push(out, Instruction::i(Op::Ori, rt, rt, (addr & 0xFFFF) as i32));
            }
            "b" => {
                need(1)?;
                let off = self.branch_offset(line, ops[0], out.len() as u32)?;
                push(out, Instruction::branch(Op::Beq, Reg::Zero, Reg::Zero, off));
            }
            m @ ("blt" | "bgt" | "ble" | "bge") => {
                need(3)?;
                let rs = reg(ops[0])?;
                let rt = reg(ops[1])?;
                // slt $at, a, b  (a < b)
                let (sa, sb, branch_op) = match m {
                    "blt" => (rs, rt, Op::Bne), // a<b  → slt=1 → taken
                    "bge" => (rs, rt, Op::Beq), // !(a<b)
                    "bgt" => (rt, rs, Op::Bne), // b<a
                    "ble" => (rt, rs, Op::Beq), // !(b<a)
                    _ => unreachable!(),
                };
                push(out, Instruction::r(Op::Slt, Reg::At, sa, sb));
                let off = self.branch_offset(line, ops[2], out.len() as u32)?;
                push(out, Instruction::branch(branch_op, Reg::At, Reg::Zero, off));
            }
            // ---- hardware instructions ----
            "halt" => {
                need(0)?;
                push(out, Instruction::halt());
            }
            "jr" => {
                need(1)?;
                push(out, Instruction::jr(reg(ops[0])?));
            }
            "jalr" => {
                need(2)?;
                push(out, Instruction::jalr(reg(ops[0])?, reg(ops[1])?));
            }
            m @ ("j" | "jal") => {
                need(1)?;
                let op = if m == "j" { Op::J } else { Op::Jal };
                let target = match self.lookup(line, ops[0]) {
                    Ok(Symbol::Text(t)) => t,
                    Ok(Symbol::Data(_)) => {
                        return Err(err(line, format!("`{}` is a data symbol", ops[0])))
                    }
                    Err(e) => match parse_imm(ops[0]) {
                        Ok(v) => v as u32,
                        Err(_) => return Err(e),
                    },
                };
                push(out, Instruction::jump(op, target));
            }
            "lui" => {
                need(2)?;
                push(out, Instruction::i(Op::Lui, reg(ops[0])?, Reg::Zero, imm(ops[1])?));
            }
            m @ ("lw" | "sw") => {
                need(2)?;
                let rt = reg(ops[0])?;
                let (off, base) = parse_mem(ops[1]).map_err(|msg| err(line, msg))?;
                let base = reg(base)?;
                let off = parse_imm(off).map_err(|msg| err(line, msg))?;
                let i = if m == "lw" {
                    Instruction::lw(rt, off, base)
                } else {
                    Instruction::sw(rt, off, base)
                };
                push(out, i);
            }
            m => {
                let op =
                    mnemonic_op(m).ok_or_else(|| err(line, format!("unknown mnemonic `{m}`")))?;
                match op.class() {
                    OpClass::AluReg => {
                        need(3)?;
                        push(out, Instruction::r(op, reg(ops[0])?, reg(ops[1])?, reg(ops[2])?));
                    }
                    OpClass::ShiftImm => {
                        need(3)?;
                        let sh = imm(ops[2])?;
                        if !(0..32).contains(&sh) {
                            return Err(err(line, format!("shift amount {sh} out of range")));
                        }
                        push(out, Instruction::shift(op, reg(ops[0])?, reg(ops[1])?, sh as u32));
                    }
                    OpClass::AluImm => {
                        need(3)?;
                        let v = imm(ops[2])?;
                        if !imm_in_range(op, v) {
                            return Err(err(line, format!("immediate {v} out of range for {op}")));
                        }
                        push(out, Instruction::i(op, reg(ops[0])?, reg(ops[1])?, v));
                    }
                    OpClass::Branch => match op {
                        Op::Beq | Op::Bne => {
                            need(3)?;
                            let off = self.branch_offset(line, ops[2], out.len() as u32)?;
                            push(out, Instruction::branch(op, reg(ops[0])?, reg(ops[1])?, off));
                        }
                        _ => {
                            need(2)?;
                            let off = self.branch_offset(line, ops[1], out.len() as u32)?;
                            push(out, Instruction::branch(op, reg(ops[0])?, Reg::Zero, off));
                        }
                    },
                    _ => return Err(err(line, format!("`{m}` cannot be assembled here"))),
                }
            }
        }
        Ok(())
    }

    fn branch_offset(&self, line: usize, label: &str, at: u32) -> Result<i32, AssembleError> {
        let target = match self.lookup(line, label) {
            Ok(Symbol::Text(t)) => t as i64,
            Ok(Symbol::Data(_)) => {
                return Err(err(line, format!("branch to data symbol `{label}`")))
            }
            Err(e) => {
                // Allow raw numeric offsets too.
                match parse_imm(label) {
                    Ok(v) => return Ok(v),
                    Err(_) => return Err(e),
                }
            }
        };
        let off = target - (i64::from(at) + 1);
        if !(-(1 << 15)..(1 << 15)).contains(&off) {
            return Err(err(line, format!("branch to `{label}` out of range ({off})")));
        }
        Ok(off as i32)
    }
}

fn emit_li(out: &mut Vec<Instruction>, rt: Reg, v: i32, sec: bool) {
    if (-(1 << 15)..(1 << 15)).contains(&v) {
        out.push(Instruction::i(Op::Addiu, rt, Reg::Zero, v).with_secure(sec));
    } else if (0..(1 << 16)).contains(&v) {
        out.push(Instruction::i(Op::Ori, rt, Reg::Zero, v).with_secure(sec));
    } else {
        let u = v as u32;
        out.push(Instruction::i(Op::Lui, rt, Reg::Zero, (u >> 16) as i32).with_secure(sec));
        out.push(Instruction::i(Op::Ori, rt, rt, (u & 0xFFFF) as i32).with_secure(sec));
    }
}

/// Number of hardware instructions an item expands to, or `None` for an
/// unknown mnemonic. Must agree exactly with [`Assembler::emit`].
fn pseudo_size(mnemonic: &str, operands: &[&str]) -> Option<u32> {
    Some(match mnemonic {
        "nop" | "move" | "not" | "neg" | "b" | "halt" | "jr" | "jalr" | "j" | "jal" | "lui"
        | "lw" | "sw" => 1,
        "la" => 2,
        "blt" | "bgt" | "ble" | "bge" => 2,
        "li" => {
            let v = operands.get(1).and_then(|s| parse_imm(s).ok())?;
            if (-(1 << 15)..(1 << 16)).contains(&v) {
                1
            } else {
                2
            }
        }
        m => {
            mnemonic_op(m)?;
            1
        }
    })
}

fn mnemonic_op(m: &str) -> Option<Op> {
    use Op::*;
    Some(match m {
        "addu" => Addu,
        "subu" => Subu,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "nor" => Nor,
        "sllv" => Sllv,
        "srlv" => Srlv,
        "srav" => Srav,
        "slt" => Slt,
        "sltu" => Sltu,
        "mul" => Mul,
        "div" => Div,
        "rem" => Rem,
        "addiu" => Addiu,
        "andi" => Andi,
        "ori" => Ori,
        "xori" => Xori,
        "slti" => Slti,
        "sltiu" => Sltiu,
        "sll" => Sll,
        "srl" => Srl,
        "sra" => Sra,
        "beq" => Beq,
        "bne" => Bne,
        "blez" => Blez,
        "bgtz" => Bgtz,
        "bltz" => Bltz,
        "bgez" => Bgez,
        _ => return None,
    })
}

/// Maps a possibly-secure mnemonic to (base mnemonic, secure flag).
fn resolve_secure(m: &str) -> (&str, bool) {
    if let Some(rest) = m.strip_prefix("sec.") {
        return (rest, true);
    }
    let table: &[(&str, &str)] = &[
        ("slw", "lw"),
        ("ssw", "sw"),
        ("sxor", "xor"),
        ("sxori", "xori"),
        ("ssll", "sll"),
        ("ssrl", "srl"),
        ("ssra", "sra"),
        ("ssllv", "sllv"),
        ("ssrlv", "srlv"),
        ("saddu", "addu"),
        ("smove", "move"),
    ];
    for &(sec, base) in table {
        if m == sec {
            return (base, true);
        }
    }
    (m, false)
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_mem(s: &str) -> Result<(&str, &str), String> {
    let open = s.find('(').ok_or_else(|| format!("bad memory operand `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("bad memory operand `{s}`"))?;
    if close < open {
        return Err(format!("bad memory operand `{s}`"));
    }
    let off = s[..open].trim();
    let off = if off.is_empty() { "0" } else { off };
    Ok((off, s[open + 1..close].trim()))
}

fn parse_imm(s: &str) -> Result<i32, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value: i64 = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16).map_err(|_| format!("bad immediate `{s}`"))?
    } else {
        body.parse::<i64>().map_err(|_| format!("bad immediate `{s}`"))?
    };
    let value = if neg { -value } else { value };
    if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&value) {
        return Err(format!("immediate `{s}` out of 32-bit range"));
    }
    Ok(value as u32 as i32)
}

fn imm_in_range(op: Op, v: i32) -> bool {
    if op.zero_extends_imm() {
        (0..(1 << 16)).contains(&v)
    } else {
        (-(1 << 15)..(1 << 15)).contains(&v)
    }
}

fn err(line: usize, message: String) -> AssembleError {
    AssembleError { line, message }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn minimal_program_assembles() {
        let p = assemble(".text\nmain: addiu $t0, $zero, 5\n halt\n").unwrap();
        assert_eq!(p.text.len(), 2);
        assert_eq!(p.text_addr("main"), 0);
    }

    #[test]
    fn data_words_and_labels() {
        let p =
            assemble(".data\ntbl: .word 1, 2, 0x10\nbuf: .space 8\nend: .word -1\n.text\nhalt\n")
                .unwrap();
        assert_eq!(p.data_addr("tbl"), DATA_BASE);
        assert_eq!(p.data_addr("buf"), DATA_BASE + 12);
        assert_eq!(p.data_addr("end"), DATA_BASE + 20);
        assert_eq!(p.data[..3], [1, 2, 16]);
        assert_eq!(p.data[5], 0xFFFF_FFFF);
    }

    #[test]
    fn align_directive_pads() {
        let p = assemble(".data\n.word 1\n.align 4\nb: .word 2\n.text\nhalt\n").unwrap();
        assert_eq!(p.data_addr("b") % 16, 0);
    }

    #[test]
    fn secure_mnemonics_set_the_bit() {
        let p = assemble(
            ".text\n slw $t0, 0($t1)\n ssw $t0, 4($t1)\n sxor $t2, $t0, $t0\n sec.addiu $t3, $t3, 1\n lw $t4, 0($t1)\n halt\n",
        )
        .unwrap();
        assert!(p.text[0].secure && p.text[0].is_load());
        assert!(p.text[1].secure && p.text[1].is_store());
        assert!(p.text[2].secure && p.text[2].op == Op::Xor);
        assert!(p.text[3].secure && p.text[3].op == Op::Addiu);
        assert!(!p.text[4].secure);
        assert_eq!(p.secure_instruction_count(), 4);
    }

    #[test]
    fn branches_resolve_backward_and_forward() {
        let p = assemble(
            ".text\nloop: addiu $t0, $t0, 1\n bne $t0, $t1, loop\n beq $t0, $t1, done\n nop\ndone: halt\n",
        )
        .unwrap();
        assert_eq!(p.text[1].imm, -2); // back to index 0 from index 2
        assert_eq!(p.text[2].imm, 1); // forward to index 4 from index 3
    }

    #[test]
    fn jumps_use_absolute_indices() {
        let p = assemble(".text\n j end\n nop\nend: halt\n").unwrap();
        assert_eq!(p.text[0].target, 2);
    }

    #[test]
    fn li_chooses_shortest_form() {
        let p = assemble(
            ".text\n li $t0, 5\n li $t1, -5\n li $t2, 0x8000\n li $t3, 0x12345678\n halt\n",
        )
        .unwrap();
        // 1 + 1 + 1 + 2 + 1 instructions.
        assert_eq!(p.text.len(), 6);
        assert_eq!(p.text[0].op, Op::Addiu);
        assert_eq!(p.text[2].op, Op::Ori);
        assert_eq!(p.text[3].op, Op::Lui);
        assert_eq!(p.text[4].op, Op::Ori);
    }

    #[test]
    fn la_is_lui_ori_pair() {
        let p = assemble(".data\nv: .word 9\n.text\n la $t0, v\n lw $t1, 0($t0)\n halt\n").unwrap();
        assert_eq!(p.text[0].op, Op::Lui);
        assert_eq!(p.text[1].op, Op::Ori);
        let addr = ((p.text[0].imm as u32) << 16) | (p.text[1].imm as u32);
        assert_eq!(addr, DATA_BASE);
    }

    #[test]
    fn comparison_pseudos_expand_via_at() {
        let p = assemble(".text\nloop: blt $t0, $t1, loop\n bge $t0, $t1, loop\n halt\n").unwrap();
        assert_eq!(p.text.len(), 5);
        assert_eq!(p.text[0].op, Op::Slt);
        assert_eq!(p.text[1].op, Op::Bne);
        assert_eq!(p.text[2].op, Op::Slt);
        assert_eq!(p.text[3].op, Op::Beq);
        // Pass-1 sizing must keep label math right: offset from idx 1 → 0.
        assert_eq!(p.text[1].imm, -2);
    }

    #[test]
    fn move_and_not_pseudos() {
        let p = assemble(".text\n move $t0, $t1\n not $t2, $t3\n neg $t4, $t5\n halt\n").unwrap();
        assert_eq!(p.text[0].op, Op::Addu);
        assert_eq!(p.text[1].op, Op::Nor);
        assert_eq!(p.text[2].op, Op::Subu);
        assert_eq!(p.text[2].rs, Reg::Zero);
    }

    #[test]
    fn smove_is_secure_assignment() {
        let p = assemble(".text\n smove $t0, $t1\n halt\n").unwrap();
        assert!(p.text[0].secure);
        assert_eq!(p.text[0].op, Op::Addu);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".text\n nop\n bogus $t0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble(".text\nx: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let e = assemble(".text\n j nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn wrong_operand_count_rejected() {
        let e = assemble(".text\n addu $t0, $t1\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn instruction_in_data_segment_rejected() {
        let e = assemble(".data\n addu $t0, $t1, $t2\n").unwrap_err();
        assert!(e.message.contains("outside .text"));
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble(".text\n lw $t0, ($t1)\n lw $t0, -8($sp)\n sw $t0, 0x10($gp)\n halt\n")
            .unwrap();
        assert_eq!(p.text[0].imm, 0);
        assert_eq!(p.text[1].imm, -8);
        assert_eq!(p.text[2].imm, 16);
    }

    #[test]
    fn out_of_range_immediate_rejected() {
        let e = assemble(".text\n addiu $t0, $t0, 40000\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn display_output_reassembles_to_the_same_instruction() {
        use crate::inst::{Instruction, Op};
        // Every displayable instruction form must survive
        // display → assemble; branches/jumps print numeric targets which
        // the assembler accepts.
        let samples = vec![
            Instruction::r(Op::Addu, Reg::T0, Reg::T1, Reg::T2),
            Instruction::r(Op::Xor, Reg::S3, Reg::A0, Reg::V1).into_secure(),
            Instruction::r(Op::Nor, Reg::T0, Reg::T1, Reg::T2).into_secure(),
            Instruction::shift(Op::Sll, Reg::T0, Reg::T1, 31),
            Instruction::shift(Op::Sra, Reg::T0, Reg::T1, 1).into_secure(),
            Instruction::i(Op::Addiu, Reg::Sp, Reg::Sp, -32),
            Instruction::i(Op::Andi, Reg::T0, Reg::T1, 0xFFFF),
            Instruction::i(Op::Slti, Reg::T0, Reg::T1, -5).into_secure(),
            Instruction::i(Op::Lui, Reg::T0, Reg::Zero, 0xFFFF),
            Instruction::lw(Reg::T0, -4, Reg::Sp),
            Instruction::lw(Reg::T3, 128, Reg::Gp).into_secure(),
            Instruction::sw(Reg::Ra, 0, Reg::Sp).into_secure(),
            Instruction::branch(Op::Bne, Reg::T0, Reg::T1, 5),
            Instruction::branch(Op::Bgez, Reg::A0, Reg::Zero, -3),
            Instruction::jr(Reg::Ra),
            Instruction::jalr(Reg::Ra, Reg::T9),
            Instruction::nop(),
            Instruction::halt(),
        ];
        for inst in samples {
            let text = format!(".text\n {inst}\n halt\n");
            let p =
                assemble(&text).unwrap_or_else(|e| panic!("`{inst}` failed to reassemble: {e}"));
            assert_eq!(p.text[0], inst, "round trip changed `{inst}`");
        }
    }

    #[test]
    fn full_round_trip_through_encoding() {
        let src = r#"
        .data
table:  .word 10, 20, 30, 40
        .text
main:   la   $t0, table
        li   $t1, 0
        li   $t2, 0
loop:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        slw  $t4, 0($t3)
        addu $t2, $t2, $t4
        addiu $t1, $t1, 1
        blt  $t1, $t5, loop
        halt
"#;
        let p = assemble(src).unwrap();
        for inst in &p.text {
            let word = crate::encode::encode(inst);
            assert_eq!(&crate::encode::decode(word).unwrap(), inst);
        }
    }
}
