//! # emask-fault — fault injection and dual-rail integrity checking
//!
//! The paper's security argument hinges on secure instructions carrying
//! complementary dual-rail values through the pipeline. This crate turns
//! that from an assumption into a *checked, attackable* runtime property:
//!
//! * [`FaultPlan`] / [`FaultSpec`] — a declarative description of faults:
//!   a [`FaultTrigger`] (cycle, cycle window, retired-instruction index,
//!   op class), a [`FaultTarget`] (pipeline-latch lane, register, memory
//!   word, fetch squash) and a [`FaultModel`] (transient bit-flip,
//!   stuck-at defect, multi-cycle glitch).
//! * [`FaultInjector`] — a [`PipelineHook`](emask_cpu::PipelineHook) that
//!   executes a plan against a live [`Cpu`](emask_cpu::Cpu), logging every
//!   strike that lands as an [`InjectionEvent`].
//! * [`DualRailChecker`] — the per-cycle integrity monitor: every active
//!   secure-tagged bus sample must carry `complement == !value`; a
//!   single-rail upset is reported as
//!   [`CpuErrorKind::DualRailViolation`](emask_cpu::CpuErrorKind) instead
//!   of silently corrupting the ciphertext.
//!
//! Injector and checker compose as a hook tuple, so a typical faulted run
//! is `cpu.run_hooked(limit, &mut (injector, checker))`. With no plan
//! installed the hook machinery disappears entirely — the unfaulted path
//! is the plain [`Cpu::run`](emask_cpu::Cpu::run) loop.
//!
//! Everything here works against any [`CpuBackend`](emask_cpu::CpuBackend),
//! not just the pipeline: [`run_plan_on`] replays a plan on an explicit
//! backend, and latch-lane strikes degrade to no-ops on backends without
//! pipeline latches (the reference interpreter), the same way a strike on
//! a bubble lands nowhere on the pipeline. Register and memory faults are
//! architectural and reproduce identically everywhere.
//!
//! ## Example
//!
//! ```
//! use emask_fault::{DualRailChecker, FaultInjector, FaultModel, FaultPlan,
//!     FaultSpec, FaultTarget, FaultTrigger};
//! use emask_cpu::{Cpu, CpuErrorKind, FaultLane, RailMode};
//! use emask_isa::{assemble, OpClass};
//!
//! let p = assemble(
//!     ".data\nv: .word 9\n.text\n la $t0, v\n slw $t1, 0($t0)\n halt\n",
//! ).expect("asm");
//! let plan = FaultPlan::single(FaultSpec {
//!     trigger: FaultTrigger::OnOpClass { class: OpClass::Load, skip: 0 },
//!     target: FaultTarget::Lane(FaultLane::IdExB, RailMode::TrueOnly),
//!     model: FaultModel::BitFlip { bit: 5 },
//! });
//! let mut hook = (FaultInjector::new(plan), DualRailChecker::new());
//! let err = Cpu::new(&p).run_hooked(10_000, &mut hook).unwrap_err();
//! assert!(matches!(err.kind, CpuErrorKind::DualRailViolation { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod check;
pub mod inject;
pub mod plan;

pub use check::DualRailChecker;
pub use inject::{run_plan_on, FaultInjector, InjectionEvent};
pub use plan::{FaultModel, FaultPlan, FaultSpec, FaultTarget, FaultTrigger};
