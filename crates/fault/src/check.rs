//! The dual-rail integrity checker.

use emask_cpu::{Bus, BusSample, CpuErrorKind, CycleActivity, PipelineHook};

/// A [`PipelineHook`] asserting, every cycle, that each **active,
/// secure-tagged** bus/latch sample carries a well-formed complement rail
/// (`complement == !value`). The first violation aborts the run with
/// [`CpuErrorKind::DualRailViolation`] naming the bus and the bits on
/// which the rails agreed.
///
/// This is the simulator's stand-in for the self-checking property of
/// dual-rail logic: a single-rail upset on a protected path cannot be
/// mistaken for valid data, because the rails no longer encode a legal
/// codeword. Faults that flip *both* rails consistently — or hit
/// non-secure, single-rail state — are architectural and pass the check
/// by design; the campaign harness classifies those by their effect on
/// the ciphertext instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualRailChecker {
    cycles_checked: u64,
    samples_checked: u64,
}

impl DualRailChecker {
    /// A fresh checker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cycles examined so far.
    pub fn cycles_checked(&self) -> u64 {
        self.cycles_checked
    }

    /// Active secure samples examined so far.
    pub fn samples_checked(&self) -> u64 {
        self.samples_checked
    }

    /// The sample carried on each checkable bus this cycle.
    fn samples(act: &CycleActivity) -> [(Bus, BusSample); 6] {
        [
            (Bus::Instruction, act.inst_word),
            (Bus::OperandA, act.id_ex_a),
            (Bus::OperandB, act.id_ex_b),
            (Bus::Result, act.ex_mem_result),
            (Bus::Memory, act.mem_bus),
            (Bus::Writeback, act.mem_wb_value),
        ]
    }
}

impl PipelineHook for DualRailChecker {
    fn after_cycle(&mut self, act: &CycleActivity) -> Result<(), CpuErrorKind> {
        self.cycles_checked += 1;
        for (bus, sample) in Self::samples(act) {
            if sample.active && sample.secure {
                self.samples_checked += 1;
                let agreeing = sample.rail_agreement();
                if agreeing != 0 {
                    return Err(CpuErrorKind::DualRailViolation { bus, agreeing });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultModel, FaultPlan, FaultSpec, FaultTarget, FaultTrigger};
    use crate::FaultInjector;
    use emask_cpu::{Cpu, FaultLane, RailMode};
    use emask_isa::assemble;

    /// A secure load + secure xor: plenty of secure-tagged samples.
    fn secure_program() -> emask_isa::Program {
        assemble(
            ".data\nv: .word 9\n.text\n la $t0, v\n slw $t1, 0($t0)\n nop\n nop\n sxor $t2, $t1, $t1\n halt\n",
        )
        .expect("asm")
    }

    #[test]
    fn clean_secure_run_passes_and_counts_samples() {
        let p = secure_program();
        let mut checker = DualRailChecker::new();
        Cpu::new(&p).run_hooked(10_000, &mut checker).expect("clean run");
        assert!(checker.cycles_checked() > 0);
        assert!(checker.samples_checked() > 0, "secure samples must be reached");
    }

    #[test]
    fn single_rail_upset_on_secure_lane_is_detected() {
        let p = secure_program();
        let plan = FaultPlan::single(FaultSpec {
            // Strike while the (secure) slw occupies ID/EX — the only
            // Load-class instruction in the program.
            trigger: FaultTrigger::OnOpClass { class: emask_isa::OpClass::Load, skip: 0 },
            target: FaultTarget::Lane(FaultLane::IdExB, RailMode::TrueOnly),
            model: FaultModel::BitFlip { bit: 4 },
        });
        let mut hook = (FaultInjector::new(plan), DualRailChecker::new());
        let err = Cpu::new(&p).run_hooked(10_000, &mut hook).expect_err("must be detected");
        // The checker flags the very cycle the skewed sample is driven, so
        // the run ends in a DualRailViolation, never silent corruption.
        assert!(
            matches!(err.kind, CpuErrorKind::DualRailViolation { agreeing, .. } if agreeing == 1 << 4),
            "got {:?}",
            err.kind
        );
    }

    #[test]
    fn complement_only_upset_is_detected_without_value_change() {
        let p = secure_program();
        let plan = FaultPlan::single(FaultSpec {
            // The only AluReg-class instruction is the secure sxor.
            trigger: FaultTrigger::OnOpClass { class: emask_isa::OpClass::AluReg, skip: 0 },
            target: FaultTarget::Lane(FaultLane::IdExA, RailMode::ComplementOnly),
            model: FaultModel::BitFlip { bit: 7 },
        });
        let mut hook = (FaultInjector::new(plan), DualRailChecker::new());
        let err = Cpu::new(&p).run_hooked(10_000, &mut hook).expect_err("must be detected");
        assert!(matches!(err.kind, CpuErrorKind::DualRailViolation { .. }));
    }

    #[test]
    fn both_rail_fault_passes_the_rail_check() {
        // A consistent both-rail flip is architecturally visible but
        // rail-legal: the checker must NOT fire.
        let p = secure_program();
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::OnOpClass { class: emask_isa::OpClass::Load, skip: 0 },
            target: FaultTarget::Lane(FaultLane::IdExB, RailMode::Both),
            model: FaultModel::BitFlip { bit: 4 },
        });
        let mut hook = (FaultInjector::new(plan), DualRailChecker::new());
        Cpu::new(&p).run_hooked(10_000, &mut hook).expect("rail-legal run");
        assert!(hook.0.any_injected());
    }
}
