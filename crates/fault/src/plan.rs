//! Declarative fault plans: *when* to strike, *where*, and *how*.

use emask_cpu::{FaultLane, RailMode};
use emask_isa::OpClass;

/// When a fault becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Active on exactly this cycle.
    AtCycle(u64),
    /// Active on every cycle in `start..end` (a phase window translated to
    /// cycles by the campaign harness).
    CycleWindow {
        /// First active cycle.
        start: u64,
        /// First cycle past the window.
        end: u64,
    },
    /// Active once this many instructions have retired — an
    /// instruction-indexed strike that is robust to stall-cycle jitter.
    AtRetired(u64),
    /// Active whenever an instruction of `class` occupies the ID/EX latch
    /// (about to execute), after skipping the first `skip` occurrences.
    OnOpClass {
        /// The instruction class to strike.
        class: OpClass,
        /// Occurrences to let pass unharmed first.
        skip: u64,
    },
}

impl FaultTrigger {
    /// A short stable name (used in campaign reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultTrigger::AtCycle(_) => "at-cycle",
            FaultTrigger::CycleWindow { .. } => "cycle-window",
            FaultTrigger::AtRetired(_) => "at-retired",
            FaultTrigger::OnOpClass { .. } => "on-op-class",
        }
    }
}

/// What the fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A pipeline-latch lane, under the given rail mode (single-rail
    /// upsets are what the dual-rail checker exists to catch).
    Lane(FaultLane, RailMode),
    /// Architectural register `n & 31`.
    Register(u8),
    /// The data-memory word at this byte address.
    Memory {
        /// Word-aligned byte address.
        addr: u32,
    },
    /// Squash whatever sits in the IF/ID latch (instruction skip).
    FetchSquash,
}

impl FaultTarget {
    /// A short stable name (used in campaign reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultTarget::Lane(lane, _) => lane.name(),
            FaultTarget::Register(_) => "regfile",
            FaultTarget::Memory { .. } => "memory",
            FaultTarget::FetchSquash => "fetch-squash",
        }
    }
}

/// The fault's temporal shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// A transient single-event upset: XOR `1 << bit` exactly once, on the
    /// first active cycle.
    BitFlip {
        /// Bit position, 0–31.
        bit: u8,
    },
    /// A persistent defect: on every active cycle, force `bit` to the
    /// stuck value (one when `stuck_one`, else zero).
    StuckAt {
        /// Bit position, 0–31.
        bit: u8,
        /// Stuck-at-1 when true, stuck-at-0 when false.
        stuck_one: bool,
    },
    /// A voltage/clock glitch: once triggered, XOR `mask` on `cycles`
    /// consecutive cycles.
    Glitch {
        /// Bits disturbed each glitch cycle.
        mask: u32,
        /// How many consecutive cycles the glitch lasts.
        cycles: u32,
    },
}

impl FaultModel {
    /// A short stable name (used in campaign reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::BitFlip { .. } => "bit-flip",
            FaultModel::StuckAt { .. } => "stuck-at",
            FaultModel::Glitch { .. } => "glitch",
        }
    }
}

/// One planned fault: a trigger, a target, and a temporal model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// When the fault is active.
    pub trigger: FaultTrigger,
    /// What it strikes.
    pub target: FaultTarget,
    /// Its temporal shape.
    pub model: FaultModel,
}

/// An ordered collection of [`FaultSpec`]s, executed together by one
/// [`FaultInjector`](crate::FaultInjector).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan with a single fault.
    pub fn single(spec: FaultSpec) -> Self {
        Self { faults: vec![spec] }
    }

    /// Adds a fault, builder-style.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Adds a fault in place.
    pub fn push(&mut self, spec: FaultSpec) {
        self.faults.push(spec);
    }

    /// The planned faults, in injection order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates_in_order() {
        let spec = |c| FaultSpec {
            trigger: FaultTrigger::AtCycle(c),
            target: FaultTarget::FetchSquash,
            model: FaultModel::BitFlip { bit: 0 },
        };
        let plan = FaultPlan::new().with(spec(1)).with(spec(2));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.faults()[0].trigger, FaultTrigger::AtCycle(1));
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultTrigger::AtCycle(3).name(), "at-cycle");
        assert_eq!(FaultTarget::Register(4).name(), "regfile");
        assert_eq!(FaultModel::Glitch { mask: 1, cycles: 2 }.name(), "glitch");
        assert_eq!(
            FaultTarget::Lane(emask_cpu::FaultLane::IdExA, emask_cpu::RailMode::Both).name(),
            "id_ex.a"
        );
    }
}
