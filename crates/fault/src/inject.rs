//! The [`FaultInjector`]: a [`PipelineHook`] that executes a [`FaultPlan`]
//! against a live core.

use crate::plan::{FaultModel, FaultPlan, FaultTarget, FaultTrigger};
use emask_cpu::{CpuBackend, CpuError, FaultLane, HookCtx, PipelineHook, RunResult};
use emask_isa::Program;

/// Per-fault bookkeeping across the run.
#[derive(Debug, Clone, Copy, Default)]
struct FaultState {
    /// A one-shot model (bit-flip, glitch trigger) has gone off.
    fired: bool,
    /// Remaining glitch cycles.
    glitch_left: u32,
    /// Matching op-class occurrences seen so far (for `OnOpClass::skip`).
    class_seen: u64,
}

/// One successful strike, for post-run forensics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionEvent {
    /// Cycle at which the strike landed.
    pub cycle: u64,
    /// Index of the fault in the plan.
    pub fault: usize,
    /// Bits disturbed (1 for a fetch squash).
    pub mask: u32,
}

/// Executes a [`FaultPlan`] as a pipeline hook.
///
/// Each cycle, every planned fault whose trigger is active computes a
/// disturbance mask from its [`FaultModel`] and applies it to its
/// [`FaultTarget`] through the [`HookCtx`]. One-shot models (bit-flips,
/// glitch triggers) re-arm if the strike could not land (e.g. the targeted
/// latch held a bubble), so window- and retirement-triggered transients
/// keep trying until they hit something real; a strike that lands is
/// recorded in [`FaultInjector::events`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Vec<FaultState>,
    events: Vec<InjectionEvent>,
}

impl FaultInjector {
    /// An injector for `plan`, armed and unfired.
    pub fn new(plan: FaultPlan) -> Self {
        let state = vec![FaultState::default(); plan.len()];
        Self { plan, state, events: Vec::new() }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every strike that landed, in cycle order.
    pub fn events(&self) -> &[InjectionEvent] {
        &self.events
    }

    /// True if at least one strike landed.
    pub fn any_injected(&self) -> bool {
        !self.events.is_empty()
    }

    /// Whether `trigger` is active this cycle.
    fn trigger_active(ctx: &HookCtx<'_>, trigger: FaultTrigger, st: &mut FaultState) -> bool {
        match trigger {
            FaultTrigger::AtCycle(c) => ctx.cycle() == c,
            FaultTrigger::CycleWindow { start, end } => (start..end).contains(&ctx.cycle()),
            FaultTrigger::AtRetired(n) => ctx.retired() >= n,
            FaultTrigger::OnOpClass { class, skip } => {
                // "Occurrence" = a valid ID/EX occupancy of the class; the
                // core is single-issue, so each occupancy is one cycle.
                match ctx.lane(FaultLane::IdExA) {
                    Some(view) if view.class == class => {
                        let occurrence = st.class_seen;
                        st.class_seen += 1;
                        occurrence >= skip
                    }
                    _ => false,
                }
            }
        }
    }

    /// The value currently held by `target`, for stuck-at evaluation.
    /// `FetchSquash` reads as 0 so stuck-at-1 means "squash every active
    /// cycle".
    fn current_value(ctx: &HookCtx<'_>, target: FaultTarget) -> Option<u32> {
        match target {
            FaultTarget::Lane(lane, _) => ctx.lane(lane).map(|v| v.value),
            FaultTarget::Register(n) => Some(ctx.reg(n)),
            FaultTarget::Memory { addr } => ctx.mem_word(addr).ok(),
            FaultTarget::FetchSquash => Some(0),
        }
    }

    /// Applies `mask` to `target`; true if the strike landed.
    fn apply(ctx: &mut HookCtx<'_>, target: FaultTarget, mask: u32) -> bool {
        match target {
            FaultTarget::Lane(lane, rail) => ctx.flip_lane(lane, mask, rail),
            FaultTarget::Register(n) => {
                ctx.flip_reg(n, mask);
                true
            }
            FaultTarget::Memory { addr } => ctx.flip_mem(addr, mask).is_ok(),
            FaultTarget::FetchSquash => ctx.squash_if_id(),
        }
    }
}

/// Runs `program` to completion on backend `B` with `plan` injected,
/// returning the final machine, the (spent) injector for forensics, and
/// the run outcome.
///
/// This is the backend-generic campaign entry point: the same plan can be
/// replayed against the five-stage pipeline and the reference interpreter
/// to separate *architectural* fault effects (register/memory corruption,
/// which both backends reproduce identically) from *microarchitectural*
/// ones (latch-lane strikes and fetch squashes, which degrade to no-ops on
/// backends without those structures — exactly as a strike on a bubble
/// does on the pipeline).
pub fn run_plan_on<B: CpuBackend>(
    program: &Program,
    plan: FaultPlan,
    max_cycles: u64,
) -> (B, FaultInjector, Result<RunResult, CpuError>) {
    let mut cpu = B::load(program);
    let mut inj = FaultInjector::new(plan);
    let outcome = cpu.run_hooked_with(max_cycles, &mut inj, |_| {});
    (cpu, inj, outcome)
}

impl PipelineHook for FaultInjector {
    fn before_cycle(&mut self, ctx: &mut HookCtx<'_>) {
        for (i, spec) in self.plan.faults().iter().enumerate() {
            let st = &mut self.state[i];
            let active = Self::trigger_active(ctx, spec.trigger, st);
            let mask = match spec.model {
                FaultModel::BitFlip { bit } => {
                    if active && !st.fired {
                        st.fired = true;
                        Some(1u32 << (bit & 31))
                    } else {
                        None
                    }
                }
                FaultModel::StuckAt { bit, stuck_one } => {
                    if active {
                        Self::current_value(ctx, spec.target).and_then(|v| {
                            let bitmask = 1u32 << (bit & 31);
                            let is_one = v & bitmask != 0;
                            (is_one != stuck_one).then_some(bitmask)
                        })
                    } else {
                        None
                    }
                }
                FaultModel::Glitch { mask, cycles } => {
                    if active && !st.fired {
                        st.fired = true;
                        st.glitch_left = cycles;
                    }
                    if st.glitch_left > 0 {
                        st.glitch_left -= 1;
                        Some(mask)
                    } else {
                        None
                    }
                }
            };
            let Some(mask) = mask else { continue };
            if mask == 0 {
                continue;
            }
            if Self::apply(ctx, spec.target, mask) {
                self.events.push(InjectionEvent { cycle: ctx.cycle(), fault: i, mask });
            } else if matches!(spec.model, FaultModel::BitFlip { .. }) {
                // The transient hit nothing (bubble / bad address): re-arm
                // so a window or retirement trigger can try again.
                st.fired = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, FaultSpec};
    use emask_cpu::{Cpu, RailMode};
    use emask_isa::{assemble, OpClass, Reg};

    fn program() -> emask_isa::Program {
        assemble(".text\n li $t0, 6\n li $t1, 7\n nop\n nop\n nop\n addu $t2, $t0, $t1\n halt\n")
            .expect("asm")
    }

    fn run_with_plan(plan: FaultPlan) -> (Cpu, FaultInjector) {
        let p = program();
        let mut cpu = Cpu::new(&p);
        let mut inj = FaultInjector::new(plan);
        cpu.run_hooked(10_000, &mut inj).expect("run");
        (cpu, inj)
    }

    #[test]
    fn register_bit_flip_lands_once_and_propagates() {
        // Flip bit 0 of $t0 after both li's have retired: 6^1=7, 7+7=14.
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::AtRetired(2),
            target: FaultTarget::Register(8), // $t0
            model: FaultModel::BitFlip { bit: 0 },
        });
        let (cpu, inj) = run_with_plan(plan);
        assert_eq!(inj.events().len(), 1);
        assert_eq!(cpu.reg(Reg::T2), 14);
    }

    #[test]
    fn stuck_at_keeps_forcing_the_bit() {
        // $t1 stuck-at-0 on bit 0 for the whole run: 7 -> 6, sum = 12.
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::CycleWindow { start: 0, end: u64::MAX },
            target: FaultTarget::Register(9), // $t1
            model: FaultModel::StuckAt { bit: 0, stuck_one: false },
        });
        let (cpu, inj) = run_with_plan(plan);
        // The li rewrites the bit, the defect re-clears it next cycle.
        assert!(!inj.events().is_empty());
        assert_eq!(cpu.reg(Reg::T2), 12);
    }

    #[test]
    fn glitch_persists_for_its_duration() {
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::AtCycle(1),
            target: FaultTarget::Register(10),
            model: FaultModel::Glitch { mask: 0b11, cycles: 3 },
        });
        let (_, inj) = run_with_plan(plan);
        let cycles: Vec<u64> = inj.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2, 3]);
    }

    #[test]
    fn op_class_trigger_strikes_the_alu_op() {
        // Strike operand lane A while an AluReg instruction (the addu) is
        // in ID/EX: the architectural sum changes.
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::OnOpClass { class: OpClass::AluReg, skip: 0 },
            target: FaultTarget::Lane(FaultLane::IdExA, RailMode::Both),
            model: FaultModel::BitFlip { bit: 0 },
        });
        let (cpu, inj) = run_with_plan(plan);
        assert!(inj.any_injected());
        assert_eq!(cpu.reg(Reg::T2), 14);
    }

    #[test]
    fn memory_fault_on_bad_address_is_silently_skipped() {
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::AtCycle(0),
            target: FaultTarget::Memory { addr: 0xFFFF_0001 },
            model: FaultModel::StuckAt { bit: 3, stuck_one: true },
        });
        let (cpu, inj) = run_with_plan(plan);
        assert!(!inj.any_injected());
        assert_eq!(cpu.reg(Reg::T2), 13);
    }

    #[test]
    fn transient_on_a_bubble_rearms_until_it_lands() {
        // AtRetired(1) becomes active during a stretch where ID/EX may
        // hold bubbles; the flip must still land exactly once.
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::AtRetired(1),
            target: FaultTarget::Lane(FaultLane::IdExB, RailMode::Both),
            model: FaultModel::BitFlip { bit: 2 },
        });
        let (_, inj) = run_with_plan(plan);
        assert_eq!(inj.events().len(), 1);
    }

    #[test]
    fn empty_plan_is_inert() {
        let (cpu, inj) = run_with_plan(FaultPlan::new());
        assert!(!inj.any_injected());
        assert_eq!(cpu.reg(Reg::T2), 13);
    }

    #[test]
    fn architectural_faults_replay_identically_on_every_backend() {
        // A register strike is architectural: both backends corrupt the
        // same downstream sum. (Lane strikes are microarchitectural and
        // deliberately excluded from this cross-backend contract.)
        fn strike<B: emask_cpu::CpuBackend>() -> u32 {
            let plan = FaultPlan::single(FaultSpec {
                trigger: FaultTrigger::AtRetired(2),
                target: FaultTarget::Register(8),
                model: FaultModel::BitFlip { bit: 0 },
            });
            let (cpu, inj, outcome) = super::run_plan_on::<B>(&program(), plan, 10_000);
            outcome.expect("run");
            assert_eq!(inj.events().len(), 1, "{}", B::NAME);
            cpu.reg(Reg::T2)
        }
        assert_eq!(strike::<Cpu>(), 14);
        assert_eq!(strike::<emask_cpu::Interpreter>(), 14);
    }

    #[test]
    fn lane_strikes_degrade_to_no_ops_on_the_interpreter() {
        let plan = FaultPlan::single(FaultSpec {
            trigger: FaultTrigger::CycleWindow { start: 0, end: u64::MAX },
            target: FaultTarget::Lane(FaultLane::IdExA, RailMode::Both),
            model: FaultModel::StuckAt { bit: 0, stuck_one: true },
        });
        let (cpu, inj, outcome) =
            super::run_plan_on::<emask_cpu::Interpreter>(&program(), plan, 10_000);
        outcome.expect("run");
        assert!(!inj.any_injected(), "no latch lanes to strike");
        assert_eq!(cpu.reg(Reg::T2), 13, "architectural result untouched");
    }
}
