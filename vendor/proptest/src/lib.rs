//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`, `name in strategy` and `name: Type`
//! parameters), range/tuple/`any`/`prop_map`/[`prop_oneof!`] strategies,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking and no persisted regression replay — each test runs a fixed
//! number of deterministic cases seeded from the test name, so failures
//! reproduce exactly across runs without any `.proptest-regressions`
//! machinery.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::sample(&s, rng)
                }) as std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(a in 0u32..10, b: u64, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(a < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg); $($rest)*);
    };
    (@tests ($cfg:expr); ) => {};
    (@tests ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Seed from the test path so every test draws distinct but
            // reproducible inputs.
            let seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut prop_rng =
                    $crate::test_runner::TestRng::new(seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $crate::proptest!(@bind prop_rng; $($params)*);
                $body
            }
        }
        $crate::proptest!(@tests ($cfg); $($rest)*);
    };
    // Parameter binder: `name in strategy` form.
    (@bind $rng:ident; $pat:ident in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $pat:ident in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    // Parameter binder: `name: Type` form (implicit `any::<Type>()`).
    (@bind $rng:ident; $pat:ident: $ty:ty, $($rest:tt)*) => {
        let $pat: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $pat:ident: $ty:ty) => {
        let $pat: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident; ) => {};
    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u8..17, b in -50i32..50, f in 0.0f64..10.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-50..50).contains(&b));
            prop_assert!((0.0..10.0).contains(&f));
        }

        #[test]
        fn implicit_any_params(x: u64, flag: bool, small: u8) {
            let _ = (x, flag, small);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]

        #[test]
        fn config_is_honored(_x: u8) {
            // The case count is checked indirectly: this test exists to
            // exercise the config-bearing entry arm.
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let s = (0u8..4, 10u8..14).prop_map(|(a, b)| (b, a));
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            let (b, a) = Strategy::sample(&s, &mut rng);
            assert!((10..14).contains(&b) && a < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::new(1234);
        let mut b = TestRng::new(1234);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
