//! The deterministic case runner behind [`proptest!`](crate::proptest).

/// Per-test configuration (case count only — there is no shrinking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier simulator
        // properties fast while still covering the input space well.
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of a string — seeds each test deterministically from its
/// module path and name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic generator (SplitMix64) strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("a::b"), fnv1a("a::c"));
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        TestRng::new(1).below(0);
    }
}
