//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`, and
//! the union behind `prop_oneof!`.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for drawing values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A boxed sampling function — one arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A uniform choice among boxed same-valued strategies — the engine of
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_cover_and_bound() {
        let mut rng = TestRng::new(11);
        let s = -3i32..3;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!((-3..3).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 6, "all 6 values should appear: {seen:?}");
    }

    #[test]
    fn f64_range_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = (1.5f64..2.5).sample(&mut rng);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(0);
        assert_eq!(Just(41u8).sample(&mut rng), 41);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        (5u8..5).sample(&mut TestRng::new(0));
    }
}
