//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = if span == 0 { self.len.start } else { self.len.start + rng.below(span) };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for vectors whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_span_the_range() {
        let s = vec(any::<u8>(), 0..4);
        let mut rng = TestRng::new(8);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 4);
            seen.insert(v.len());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn nested_strategies_work() {
        let s = vec(0u32..5, 2..3);
        let mut rng = TestRng::new(8);
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|&x| x < 5));
    }
}
