//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes — good enough
        // for numeric properties without manufacturing NaNs.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::new(4);
        let s = any::<u64>();
        assert_ne!(s.sample(&mut rng), s.sample(&mut rng));
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::new(4);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.sample(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::new(4);
        let s = any::<f64>();
        for _ in 0..100 {
            assert!(s.sample(&mut rng).is_finite());
        }
    }
}
