//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the minimal API surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`]/[`Rng::gen_range`].
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! fine for test-input generation and attack plaintext sampling (nothing
//! here is cryptographic).

#![forbid(unsafe_code)]

/// Types that can be produced uniformly from raw generator output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut rngs::StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::draw(self.as_std_rng())
    }

    /// A uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        // Modulo bias is irrelevant at these span sizes for test inputs.
        range.start + self.next_u64() % span
    }
}

/// Access to the concrete generator behind a `Rng` — lets `gen` stay
/// generic without dynamic dispatch.
pub trait AsStdRng {
    /// The concrete generator.
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// The subset of `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// One SplitMix64 step.
        fn step(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..8).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_infers_types() {
        let mut rng = StdRng::seed_from_u64(42);
        let x: u64 = rng.gen();
        let y: u64 = rng.gen();
        assert_ne!(x, y);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
