//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API surface its benches use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, [`BenchmarkId`], and
//! [`Throughput`]. Measurement is a simple calibrated wall-clock loop:
//! each benchmark is warmed up, then timed over enough iterations to fill
//! a short measurement window, and the mean ns/iter (plus derived
//! throughput) is printed.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Element/byte counts for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/parameter` style).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id that is just a parameter (within a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher<'a> {
    measurement: &'a mut Measurement,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its result alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (compile laziness, caches).
        black_box(routine());
        // Calibrate: run until the window fills or the iteration cap hits.
        let window = Duration::from_millis(120);
        let cap = 1_000u64;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window && iters < cap {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.measurement.iters = iters.max(1);
        self.measurement.total = elapsed;
    }
}

#[derive(Debug, Default)]
struct Measurement {
    iters: u64,
    total: Duration,
}

impl Measurement {
    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let ns_per_iter =
            if self.iters == 0 { 0.0 } else { self.total.as_nanos() as f64 / self.iters as f64 };
        let mut line =
            format!("bench {name:<44} {ns_per_iter:>14.1} ns/iter ({} iters)", self.iters);
        if let Some(tp) = throughput {
            let per_sec = match tp {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64 / (ns_per_iter / 1e9),
            };
            let unit = match tp {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!(" — {per_sec:.3e} {unit}"));
        }
        println!("{line}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    // Kept for API compatibility; the stub's window is fixed.
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub auto-calibrates instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut m = Measurement::default();
        f(&mut Bencher { measurement: &mut m });
        m.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut m = Measurement::default();
        f(&mut Bencher { measurement: &mut m }, input);
        m.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut m = Measurement::default();
        f(&mut Bencher { measurement: &mut m });
        m.report(name, None);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over one or more group-runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut m = Measurement::default();
        let mut b = Bencher { measurement: &mut m };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(m.iters >= 1);
        assert!(m.total.as_nanos() > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter("fast").to_string(), "fast");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
