//! # emask — masking the energy behavior of DES encryption
//!
//! A from-scratch Rust reproduction of *"Masking the Energy Behavior of
//! DES Encryption"* (Saputra, Vijaykrishnan, Kandemir, Irwin, Brooks, Kim,
//! Zhang — DATE 2003): secure-instruction ISA extensions for a smart-card
//! processor, an optimizing compiler with forward slicing, a cycle-accurate
//! 5-stage pipeline simulator with a transition-sensitive energy model, and
//! the SPA/DPA attacks the masking defeats.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`des`] — golden-model DES ([`emask_des`]);
//! * [`isa`] — the 32-bit RISC ISA with the secure bit ([`emask_isa`]);
//! * [`cpu`] — the five-stage pipeline simulator ([`emask_cpu`]);
//! * [`energy`] — SimplePower-style energy models ([`emask_energy`]);
//! * [`cc`] — the Tiny-C compiler with forward slicing ([`emask_cc`]);
//! * [`attack`] — SPA and DPA ([`emask_attack`]);
//! * [`telemetry`] — run observers, metrics, and trace export
//!   ([`emask_telemetry`]);
//! * [`fault`] — fault injection and dual-rail integrity checking
//!   ([`emask_fault`]);
//! * [`par`] — the deterministic parallel execution layer
//!   ([`emask_par`]);
//! * [`core`] — the assembled end-to-end system ([`emask_core`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use emask::{MaskPolicy, MaskedDes};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Compile the paper's bit-per-word DES with compiler-selected masking.
//! let des = MaskedDes::compile(MaskPolicy::Selective)?;
//! let run = des.encrypt(0x0123456789ABCDEF, 0x133457799BBCDFF1)?;
//! assert_eq!(run.ciphertext, 0x85E813540F0AB405); // validated vs FIPS 46-3
//! println!(
//!     "{} cycles at {:.1} pJ/cycle — {} secure instructions",
//!     run.trace.len(),
//!     run.trace.mean_pj(),
//!     des.program().secure_instruction_count()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the DPA attack demo, the masking-policy trade-off
//! study, and direct use of the compiler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use emask_attack as attack;
pub use emask_cc as cc;
pub use emask_core as core;
pub use emask_cpu as cpu;
pub use emask_des as des;
pub use emask_energy as energy;
pub use emask_fault as fault;
pub use emask_isa as isa;
pub use emask_par as par;
pub use emask_telemetry as telemetry;

pub use emask_core::{
    ChromeTrace, CycleCsv, EncryptionRun, EnergyParams, EnergyTrace, MaskPolicy, MaskedDes,
    MaskedXtea, MetricsRegistry, MetricsSnapshot, Phase, RunObserver, SecureStyle,
};
pub use emask_des::{Des, KeySchedule, TripleDes};
