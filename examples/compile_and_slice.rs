//! Direct use of the compiler: annotate a variable `secure`, watch the
//! forward slice propagate, and inspect the selected secure instructions
//! in the generated assembly.
//!
//! ```text
//! cargo run --example compile_and_slice
//! ```

use emask::cc::{compile, CompileOptions, MaskPolicy};
use emask::cpu::Cpu;
use emask::isa::Reg;

const SOURCE: &str = r#"
// A toy cipher: mix a secret key into a public message. Only `key` is
// annotated; the compiler's forward slice finds everything derived from
// it — including `mixed`, and the indexing of `sbox` by key-derived data.
secure int key[4] = {3, 1, 2, 0};
const int sbox[4] = {2, 0, 3, 1};
int message[4] = {10, 20, 30, 40};
int mixed[4];
int checksum;

int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        mixed[i] = message[i] ^ sbox[key[i]];
    }
    checksum = 0;
    for (i = 0; i < 4; i = i + 1) {
        checksum = checksum + mixed[i];
    }
    return declassify(checksum);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = compile(SOURCE, CompileOptions::with_policy(MaskPolicy::Selective))?;

    println!("== forward-slice report ==");
    print!("{}", out.report);
    let mut tainted: Vec<&String> = out.report.tainted_globals.iter().collect();
    tainted.sort();
    println!("tainted globals: {tainted:?}");

    println!("\n== generated assembly (secure instructions marked) ==");
    for line in out.asm.lines() {
        let trimmed = line.trim_start();
        let marker = if trimmed.starts_with("sec.")
            || trimmed.starts_with("slw")
            || trimmed.starts_with("ssw")
            || trimmed.starts_with("sxor")
        {
            " <-- secure"
        } else {
            ""
        };
        println!("{line}{marker}");
    }

    println!("\n== running on the simulated core ==");
    let mut cpu = Cpu::new(&out.program);
    let stats = cpu.run(1_000_000)?;
    println!(
        "checksum = {} ({} cycles, {} secure instructions retired)",
        cpu.reg(Reg::V0),
        stats.cycles,
        stats.retired_secure
    );
    Ok(())
}
