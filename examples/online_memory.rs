//! Demonstrates the single-pass attack engine's memory bound: online DPA
//! folds each trace into O(guesses × trace length) accumulators the moment
//! it is produced, so peak RSS is flat in the number of traces — where the
//! batch path's trace matrix grows linearly.
//!
//! ```text
//! cargo run --release --example online_memory [traces] [--batch]
//! ```
//!
//! Run it at 1 000 and 10 000 traces and compare the printed `VmHWM`
//! (peak resident set, Linux): online stays put, `--batch` grows ~10×.

use emask::attack::dpa::{collect_traces, selection_bit, DpaConfig};
use emask::attack::online::OnlineDpa;
use emask::attack::recover_subkey_par;
use emask::par::Jobs;
use emask::KeySchedule;

const KEY: u64 = 0x1334_5779_9BBC_DFF1;
const TRACE_LEN: usize = 2048;

/// A synthetic oracle with the true round-1 leak embedded — long traces so
/// the matrix-vs-accumulator difference dominates the process baseline.
fn oracle(p: u64) -> Vec<f64> {
    let subkey = KeySchedule::new(KEY).round_key(1).sbox_slice(0);
    let b = selection_bit(p, subkey, 0, 0);
    let mut t = vec![160.0; TRACE_LEN];
    t[100] += if b { 5.0 } else { 0.0 };
    t[7] += (p % 13) as f64;
    t
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let batch = args.next().as_deref() == Some("--batch");
    let cfg = DpaConfig { samples, sbox: 0, bit: 0, seed: 7 };

    let result = if batch {
        // The old shape: materialize every trace, then analyze.
        let (plaintexts, traces) = collect_traces(oracle, samples, cfg.seed);
        let mut acc = OnlineDpa::single(cfg.sbox, cfg.bit);
        for (p, t) in plaintexts.iter().zip(&traces) {
            acc.push(*p, t).expect("aligned traces");
        }
        acc.result()
    } else {
        recover_subkey_par(&oracle, &cfg, Jobs::serial())
    };

    let mode = if batch { "batch (trace matrix)" } else { "online (single-pass)" };
    println!("{mode}: {samples} traces x {TRACE_LEN} samples — {result}");
    match peak_rss_kb() {
        Some(kb) => println!("VmHWM (peak RSS): {kb} kB"),
        None => println!("VmHWM unavailable on this platform"),
    }
}
