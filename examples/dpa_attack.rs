//! The attacker's view: run the differential power analysis of Kocher et
//! al. against the simulated smart card, before and after masking.
//!
//! The attack samples random plaintexts, records the per-cycle energy of
//! round 1, guesses each 6-bit subkey of S-box 1, partitions the traces by
//! a predicted S-box output bit, and looks for a difference-of-means peak.
//! Against the unmasked card the true subkey wins; against the masked card
//! every guess is flat.
//!
//! ```text
//! cargo run --release --example dpa_attack [samples]
//! ```

use emask::attack::dpa::{recover_subkey_multibit, DpaConfig};
use emask::core::desgen::DesProgramSpec;
use emask::{KeySchedule, MaskPolicy, MaskedDes, Phase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let key = 0x1334_5779_9BBC_DFF1;
    let true_subkey = KeySchedule::new(key).round_key(1).sbox_slice(0);
    println!("secret key {key:016X}; the round-1 subkey of S-box 1 is {true_subkey:#04X}");
    println!("campaign: {samples} random plaintexts per device\n");

    for policy in [MaskPolicy::None, MaskPolicy::Selective] {
        // Round 1 is all the attack needs — a 2-round device keeps the
        // trace matrix small.
        let des = MaskedDes::compile_spec(policy, &DesProgramSpec { rounds: 2 })?;
        let window = des.encrypt(0, key)?.phase_window(Phase::Round(1)).expect("round 1");
        let oracle = |plaintext: u64| -> Vec<f64> {
            let run = des.encrypt(plaintext, key).expect("oracle run");
            run.trace.window(window.clone()).samples().to_vec()
        };
        let cfg = DpaConfig { samples, sbox: 0, bit: 0, seed: 1 };
        let result = recover_subkey_multibit(oracle, &cfg);

        println!("device: {policy}");
        println!("  {result}");
        // Show the top guesses as a mini leaderboard.
        let mut ranked: Vec<(u8, f64)> = (0..64u8).map(|g| (g, result.peaks[g as usize])).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("  top guesses:");
        for (g, p) in ranked.iter().take(4) {
            let mark = if *g == true_subkey { "  <-- true subkey" } else { "" };
            println!("    {g:#04X}: peak {p:.3} pJ{mark}");
        }
        let recovered =
            result.best_guess == true_subkey && result.peaks[result.best_guess as usize] > 0.5;
        println!(
            "  verdict: {}\n",
            if recovered { "KEY MATERIAL RECOVERED" } else { "attack found nothing" }
        );
    }
    Ok(())
}
