//! Exports the paper's figure data as CSV files for external plotting
//! (gnuplot, matplotlib, a spreadsheet — anything that reads CSV).
//!
//! ```text
//! cargo run --release --example trace_export [out_dir]
//! ```
//!
//! Writes `fig6_trace.csv`, `fig8_key_diff.csv`, `fig9_masked_diff.csv`
//! and `fig12_overhead.csv` into `out_dir` (default `target/figures`).

use emask::core::desgen::DesProgramSpec;
use emask::{MaskPolicy, MaskedDes, Phase};
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf =
        std::env::args().nth(1).unwrap_or_else(|| "target/figures".into()).into();
    fs::create_dir_all(&out_dir)?;
    let key = 0x1334_5779_9BBC_DFF1u64;
    let key2 = key ^ (1u64 << 63);
    let plaintext = 0x0123_4567_89AB_CDEF;
    // Two rounds keep this example quick; pass the full experience through
    // `repro` instead.
    let spec = DesProgramSpec { rounds: 2 };

    println!("simulating (policy: none)...");
    let original = MaskedDes::compile_spec(MaskPolicy::None, &spec)?;
    let o1 = original.encrypt(plaintext, key)?;
    let o2 = original.encrypt(plaintext, key2)?;

    println!("simulating (policy: selective)...");
    let masked = MaskedDes::compile_spec(MaskPolicy::Selective, &spec)?;
    let m1 = masked.encrypt(plaintext, key)?;
    let m2 = masked.encrypt(plaintext, key2)?;

    let round1 = o1.phase_window(Phase::Round(1)).expect("round 1");
    let files = [
        ("fig6_trace.csv", o1.trace.to_csv()),
        (
            "fig8_key_diff.csv",
            o1.trace.window(round1.clone()).diff(&o2.trace.window(round1.clone())).to_csv(),
        ),
        (
            "fig9_masked_diff.csv",
            m1.trace.window(round1.clone()).diff(&m2.trace.window(round1.clone())).to_csv(),
        ),
        ("fig12_overhead.csv", {
            let kp = m1.phase_window(Phase::KeyPermutation).expect("kp");
            m1.trace.window(kp.clone()).diff(&o1.trace.window(kp)).to_csv()
        }),
    ];
    for (name, csv) in files {
        let path = out_dir.join(name);
        fs::write(&path, &csv)?;
        println!("wrote {} ({} rows)", path.display(), csv.lines().count() - 1);
    }
    println!("\nplot with e.g.:");
    println!("  gnuplot -e \"set datafile separator ','; plot '{}/fig6_trace.csv' using 1:2 with lines\"", out_dir.display());
    Ok(())
}
