//! Quickstart: compile the paper's masked DES, run one encryption on the
//! simulated smart-card core, and look at its energy profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use emask::{MaskPolicy, MaskedDes, Phase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = 0x1334_5779_9BBC_DFF1;
    let plaintext = 0x0123_4567_89AB_CDEF;

    println!("compiling the bit-per-word DES program with selective masking...");
    let des = MaskedDes::compile(MaskPolicy::Selective)?;
    println!(
        "  {} instructions, {} secure ({} tainted globals found by the forward slice)",
        des.program().text.len(),
        des.program().secure_instruction_count(),
        des.report().tainted_globals.len()
    );

    println!("running on the 5-stage pipeline with the energy model attached...");
    let run = des.encrypt(plaintext, key)?;
    println!("  ciphertext {:016X} (validated against the FIPS 46-3 golden model)", run.ciphertext);
    println!(
        "  {} cycles, {:.2} µJ total, {:.1} pJ/cycle mean, IPC {:.2}",
        run.stats.cycles,
        run.trace.total_uj(),
        run.trace.mean_pj(),
        run.stats.ipc()
    );

    println!("per-phase energy:");
    let mut phases = vec![Phase::InitialPermutation, Phase::KeyPermutation];
    phases.extend((1..=16).map(Phase::Round));
    phases.push(Phase::OutputPermutation);
    for phase in phases {
        if let Some(t) = run.phase_trace(phase) {
            println!("  {phase:<22} {:>8} cycles {:>9.2} nJ", t.len(), t.total_pj() / 1000.0);
        }
    }

    println!("\nenergy trace (whole encryption):");
    print!("{}", run.trace.ascii_plot(100, 10));
    Ok(())
}
