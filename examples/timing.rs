//! Wall-time of an unobserved full 16-round encryption.
use emask::{MaskPolicy, MaskedDes};
use std::time::Instant;

fn main() {
    let des = MaskedDes::compile(MaskPolicy::Selective).expect("compile");
    for _ in 0..2 {
        des.encrypt(0x0123_4567_89AB_CDEF, 0x1334_5779_9BBC_DFF1).expect("warmup");
    }
    let mut best = f64::INFINITY;
    for _ in 0..15 {
        let t0 = Instant::now();
        let run = des.encrypt(0x0123_4567_89AB_CDEF, 0x1334_5779_9BBC_DFF1).expect("run");
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(run.ciphertext, 0x85E8_1354_0F0A_B405);
        best = best.min(dt);
    }
    println!("best encrypt wall time: {:.3} ms", best * 1e3);
}
