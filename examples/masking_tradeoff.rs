//! The security/energy trade-off across the paper's four masking
//! policies: no masking, compiler-selected (forward slicing), naive
//! all-loads/stores, and whole-program dual rail — the in-text totals
//! table of the evaluation (46.4 / 52.6 / 63.6 / 83.5 µJ in the paper).
//!
//! ```text
//! cargo run --release --example masking_tradeoff [rounds]
//! ```

use emask::core::desgen::DesProgramSpec;
use emask::{MaskPolicy, MaskedDes, Phase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|r| (1..=16).contains(r))
        .unwrap_or(16);
    let key = 0x1334_5779_9BBC_DFF1;
    let plaintext = 0x0123_4567_89AB_CDEF;

    println!(
        "{:>18} {:>10} {:>10} {:>8} {:>14}",
        "policy", "total µJ", "pJ/cycle", "secure", "round-1 leak"
    );
    let mut totals = Vec::new();
    for policy in [
        MaskPolicy::None,
        MaskPolicy::Selective,
        MaskPolicy::AllLoadsStores,
        MaskPolicy::AllInstructions,
    ] {
        let des = MaskedDes::compile_spec(policy, &DesProgramSpec { rounds })?;
        let a = des.encrypt(plaintext, key)?;
        let b = des.encrypt(plaintext, key ^ (1 << 63))?;
        let w = a.phase_window(Phase::Round(1)).expect("round 1");
        let leak = a.trace.window(w.clone()).diff(&b.trace.window(w)).max_abs();
        println!(
            "{:>18} {:>10.2} {:>10.1} {:>8} {:>11.2} pJ",
            policy.to_string(),
            a.trace.total_uj(),
            a.trace.mean_pj(),
            des.program().secure_instruction_count(),
            leak
        );
        totals.push(a.trace.total_uj());
    }

    println!();
    println!(
        "selective masking costs {:.1}% extra energy; whole-program dual rail costs {:.1}%",
        100.0 * (totals[1] / totals[0] - 1.0),
        100.0 * (totals[3] / totals[0] - 1.0)
    );
    println!(
        "the compiler's slice spends {:.0}% less masking energy than dual-rail-everything \
         (paper: 83%)",
        100.0 * (1.0 - (totals[1] - totals[0]) / (totals[3] - totals[0]))
    );
    Ok(())
}
